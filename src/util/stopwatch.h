/**
 * @file
 * Wall-clock measurement helpers for self-profiling.
 *
 * Simulated time is the repo's currency everywhere else; these helpers are
 * the one sanctioned window onto *host* time, used only to attribute where
 * the simulator itself spends its cycles (events/sec trajectories, the
 * `--profile` breakdown). They live in `util/` deliberately: shiftlint bans
 * nondeterministic sources outside this directory, and profiling results
 * must never feed back into simulation state.
 */

#pragma once

#include <chrono>
#include <cstdint>

namespace shiftpar::util {

/** Monotonic wall-clock stopwatch (steady_clock; immune to NTP slews). */
class Stopwatch
{
  public:
    /** Starts running on construction. */
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}

    /** Restart from zero. */
    void reset() { start_ = std::chrono::steady_clock::now(); }

    /** @return seconds elapsed since construction or the last reset(). */
    double elapsed_s() const
    {
        const auto d = std::chrono::steady_clock::now() - start_;
        return std::chrono::duration<double>(d).count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/**
 * @return the process's peak resident set size in bytes, or 0 when the
 *         platform offers no way to ask (reads ru_maxrss via getrusage).
 */
std::uint64_t peak_rss_bytes();

} // namespace shiftpar::util
