#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "util/logging.h"

namespace shiftpar {

Table::Table(std::vector<std::string> header)
    : header_(std::move(header))
{
    SP_ASSERT(!header_.empty());
}

void
Table::add_row(std::vector<std::string> row)
{
    SP_ASSERT(row.size() == header_.size(),
              "row arity must match header arity");
    rows_.push_back(std::move(row));
}

std::string
Table::fmt(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
Table::fmt_count(long long v)
{
    std::string digits = std::to_string(v < 0 ? -v : v);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count != 0 && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    if (v < 0)
        out.push_back('-');
    return {out.rbegin(), out.rend()};
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto render_row = [&](const std::vector<std::string>& row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += "| ";
            line += row[c];
            line.append(widths[c] - row[c].size() + 1, ' ');
        }
        line += "|\n";
        return line;
    };

    std::string sep;
    for (std::size_t c = 0; c < widths.size(); ++c) {
        sep += "+";
        sep.append(widths[c] + 2, '-');
    }
    sep += "+\n";

    std::string out = sep + render_row(header_) + sep;
    for (const auto& row : rows_)
        out += render_row(row);
    out += sep;
    return out;
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace shiftpar
