#include "util/csv.h"

#include <filesystem>
#include <sstream>

#include "util/logging.h"

namespace shiftpar {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : arity_(header.size())
{
    SP_ASSERT(!header.empty());
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
    }
    out_.open(path);
    if (!out_) {
        SP_LOG_WARN("CsvWriter: could not open ", path,
                    "; results will not be persisted");
        return;
    }
    write_fields(header);
}

void
CsvWriter::add_row(const std::vector<std::string>& row)
{
    SP_ASSERT(row.size() == arity_, "CSV row arity mismatch");
    if (out_)
        write_fields(row);
}

void
CsvWriter::add_row(const std::vector<double>& row)
{
    std::vector<std::string> fields;
    fields.reserve(row.size());
    for (double v : row) {
        std::ostringstream os;
        os << v;
        fields.push_back(os.str());
    }
    add_row(fields);
}

void
CsvWriter::write_fields(const std::vector<std::string>& fields)
{
    for (std::size_t i = 0; i < fields.size(); ++i) {
        const std::string& f = fields[i];
        const bool needs_quotes =
            f.find_first_of(",\"\n") != std::string::npos;
        if (i != 0)
            out_ << ',';
        if (needs_quotes) {
            out_ << '"';
            for (char c : f) {
                if (c == '"')
                    out_ << '"';
                out_ << c;
            }
            out_ << '"';
        } else {
            out_ << f;
        }
    }
    out_ << '\n';
}

} // namespace shiftpar
