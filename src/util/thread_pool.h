/**
 * @file
 * Minimal fixed-size worker pool for embarrassingly parallel host work
 * (the bench sweep runner). Tasks are plain closures; ordering guarantees
 * are built by callers (see bench/common/sweep.h for the ordered-commit
 * pattern that keeps parallel sweeps bit-identical to sequential ones).
 */

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace shiftpar::util {

/** Fixed set of worker threads draining a FIFO task queue. */
class ThreadPool
{
  public:
    /**
     * Start `num_threads` workers (clamped to >= 1).
     *
     * @param num_threads Worker count; 0 picks `default_concurrency()`.
     */
    explicit ThreadPool(int num_threads);

    /** Drains outstanding tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Enqueue one task; runs on some worker in FIFO dispatch order. */
    void submit(std::function<void()> task);

    /** Block until the queue is empty and every worker is idle. */
    void wait_idle();

    /** @return worker-thread count. */
    int size() const { return static_cast<int>(workers_.size()); }

    /**
     * @return the host's hardware concurrency (>= 1); the default for a
     * sweep's `--jobs` flag.
     */
    static int default_concurrency();

  private:
    void worker_loop();

    std::mutex mutex_;
    std::condition_variable work_ready_;   ///< task queued or stopping
    std::condition_variable idle_;         ///< queue empty, no task running
    std::deque<std::function<void()>> queue_;
    std::size_t active_ = 0;  ///< tasks currently executing
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

} // namespace shiftpar::util
