/**
 * @file
 * Terminal plotting for bench output: multi-series line charts and
 * horizontal bar charts rendered with Unicode block characters.
 *
 * The paper's timeline figures (Figs. 7, 9, 10) are regenerated directly in
 * the terminal so bench_output.txt carries the visual shape, not just
 * numbers. Plots are deterministic text — diffable across runs.
 */

#pragma once

#include <string>
#include <vector>

namespace shiftpar {

/** One named series of (implicitly x-indexed) samples. */
struct PlotSeries
{
    std::string name;
    std::vector<double> values;
};

/** Options for the line chart renderer. */
struct LinePlotOptions
{
    /** Plot body width in characters (series are resampled to fit). */
    int width = 72;

    /** Plot body height in rows. */
    int height = 12;

    /** Y-axis label (printed in the header). */
    std::string y_label;

    /** X-axis label (printed under the plot). */
    std::string x_label;

    /** Use a logarithmic y-axis (values must be > 0 where plotted). */
    bool log_y = false;
};

/**
 * Render a multi-series line chart; each series gets a distinct glyph.
 * Series may have different lengths — each is resampled onto the width.
 */
std::string render_line_plot(const std::vector<PlotSeries>& series,
                             const LinePlotOptions& opts = {});

/** Render a labeled horizontal bar chart (one bar per entry). */
std::string render_bar_chart(const std::vector<std::string>& labels,
                             const std::vector<double>& values,
                             const std::string& value_label, int width = 50);

} // namespace shiftpar
