#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace shiftpar {

void
Summary::add(double value)
{
    values_.push_back(value);
    sum_ += value;
    sorted_valid_ = false;
}

double
Summary::mean() const
{
    return values_.empty() ? 0.0 : sum_ / static_cast<double>(values_.size());
}

double
Summary::min() const
{
    if (values_.empty())
        return 0.0;
    ensure_sorted();
    return sorted_.front();
}

double
Summary::max() const
{
    if (values_.empty())
        return 0.0;
    ensure_sorted();
    return sorted_.back();
}

double
Summary::stddev() const
{
    if (values_.size() < 2)
        return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double v : values_)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double
Summary::percentile(double p) const
{
    SP_ASSERT(p >= 0.0 && p <= 100.0);
    if (values_.empty())
        return 0.0;
    ensure_sorted();
    if (sorted_.size() == 1)
        return sorted_.front();
    const double idx = p / 100.0 * static_cast<double>(sorted_.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(idx));
    const auto hi = static_cast<std::size_t>(std::ceil(idx));
    const double frac = idx - static_cast<double>(lo);
    return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

void
Summary::clear()
{
    values_.clear();
    sorted_.clear();
    sorted_valid_ = true;
    sum_ = 0.0;
}

void
Summary::ensure_sorted() const
{
    if (!sorted_valid_) {
        sorted_ = values_;
        std::sort(sorted_.begin(), sorted_.end());
        sorted_valid_ = true;
    }
}

TimeSeries::TimeSeries(double bin_seconds)
    : bin_seconds_(bin_seconds)
{
    SP_ASSERT(bin_seconds > 0.0);
}

void
TimeSeries::add(double t, double value)
{
    SP_ASSERT(t >= 0.0);
    const auto idx = static_cast<std::size_t>(t / bin_seconds_);
    if (idx >= bins_.size())
        bins_.resize(idx + 1, 0.0);
    bins_[idx] += value;
}

double
TimeSeries::bin_value(std::size_t i) const
{
    return i < bins_.size() ? bins_[i] : 0.0;
}

double
TimeSeries::rate(std::size_t i) const
{
    return bin_value(i) / bin_seconds_;
}

double
TimeSeries::bin_start(std::size_t i) const
{
    return bin_seconds_ * static_cast<double>(i);
}

double
TimeSeries::peak_rate() const
{
    double peak = 0.0;
    for (std::size_t i = 0; i < bins_.size(); ++i)
        peak = std::max(peak, rate(i));
    return peak;
}

std::string
format_percentiles(const Summary& s)
{
    std::ostringstream os;
    os << "p50=" << s.percentile(50) << " p90=" << s.percentile(90)
       << " p99=" << s.percentile(99);
    return os.str();
}

} // namespace shiftpar
