/**
 * @file
 * Minimal streaming JSON writer.
 *
 * Backs the observability outputs (Chrome-trace export, machine-readable
 * run reports) without an external dependency. The writer is a thin state
 * machine over an `std::ostream`: containers are opened/closed explicitly,
 * commas and key/value ordering are handled automatically, and emitted
 * documents are always syntactically valid JSON provided begin/end calls
 * are balanced. Numbers are formatted locale-independently with enough
 * precision to round-trip doubles.
 */

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace shiftpar::util {

/** Escape `s` for embedding inside a JSON string literal (no quotes). */
std::string json_escape(std::string_view s);

/** Format a double as a JSON number token ("null" for NaN/Inf). */
std::string json_number(double v);

/** Streaming JSON document writer over an ostream. */
class JsonWriter
{
  public:
    /**
     * @param os Destination stream (borrowed; must outlive the writer).
     * @param pretty Indent nested containers for human consumption.
     */
    explicit JsonWriter(std::ostream& os, bool pretty = false);

    /** Open an object ("{"); as a value, or under a pending key. */
    JsonWriter& begin_object();

    /** Close the innermost object. */
    JsonWriter& end_object();

    /** Open an array ("["). */
    JsonWriter& begin_array();

    /** Close the innermost array. */
    JsonWriter& end_array();

    /** Emit an object key; the next emitted value binds to it. */
    JsonWriter& key(std::string_view k);

    /** Scalar values. */
    JsonWriter& value(std::string_view v);
    JsonWriter& value(const char* v);
    JsonWriter& value(double v);
    JsonWriter& value(std::int64_t v);
    JsonWriter& value(int v);
    JsonWriter& value(bool v);
    JsonWriter& null();

    /** Splice pre-rendered JSON verbatim as one value (caller's duty to
     *  pass a complete, valid JSON term). */
    JsonWriter& raw(std::string_view json);

    /** Convenience: `key(k)` followed by `value(v)`. */
    template <typename T>
    JsonWriter&
    kv(std::string_view k, T&& v)
    {
        key(k);
        return value(std::forward<T>(v));
    }

    /** @return true once every opened container has been closed. */
    bool complete() const { return stack_.empty() && wrote_root_; }

  private:
    enum class Scope { kObject, kArray };

    /** Emit separators/indentation before a key or value token. */
    void prepare_value();
    void newline_indent();

    std::ostream& os_;
    bool pretty_;
    bool wrote_root_ = false;
    bool key_pending_ = false;
    std::vector<Scope> stack_;
    std::vector<bool> has_items_;
};

} // namespace shiftpar::util
