#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace shiftpar {

namespace {

/** SplitMix64 step, used for seeding and stream splitting. */
std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto& s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next_u64()
{
    // xoshiro256** by Blackman & Vigna (public domain reference).
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniform_int(std::int64_t lo, std::int64_t hi)
{
    SP_ASSERT(lo <= hi);
    const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0)  // full 64-bit range
        return static_cast<std::int64_t>(next_u64());
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
    std::uint64_t v;
    do {
        v = next_u64();
    } while (v >= limit);
    return lo + static_cast<std::int64_t>(v % range);
}

double
Rng::exponential(double rate)
{
    SP_ASSERT(rate > 0.0);
    // -log(1 - U) avoids log(0) since uniform() < 1.
    return -std::log(1.0 - uniform()) / rate;
}

double
Rng::normal(double mean, double stddev)
{
    // Box-Muller; draws two uniforms per variate (second discarded for
    // simplicity and reproducibility under stream splitting).
    double u1 = 1.0 - uniform();  // (0, 1]
    double u2 = uniform();
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * M_PI * u2);
    return mean + stddev * z;
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

double
Rng::pareto(double xm, double alpha)
{
    SP_ASSERT(xm > 0.0 && alpha > 0.0);
    return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::size_t
Rng::categorical(const std::vector<double>& weights)
{
    SP_ASSERT(!weights.empty());
    double total = 0.0;
    for (double w : weights) {
        SP_ASSERT(w >= 0.0);
        total += w;
    }
    SP_ASSERT(total > 0.0);
    double r = uniform() * total;
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (r < acc)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::split()
{
    std::uint64_t child_seed = next_u64();
    return Rng(child_seed);
}

} // namespace shiftpar
