#include "util/json.h"

#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace shiftpar::util {

std::string
json_escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
json_number(double v)
{
    if (!std::isfinite(v))
        return "null";  // JSON has no NaN/Inf; null is the convention
    char buf[40];
    // %.17g round-trips any double; trim to a shorter form when exact.
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    double parsed = 0.0;
    for (int prec = 1; prec < 17; ++prec) {
        char probe[40];
        std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
        std::sscanf(probe, "%lf", &parsed);
        if (parsed == v)
            return probe;
    }
    return buf;
}

JsonWriter::JsonWriter(std::ostream& os, bool pretty)
    : os_(os), pretty_(pretty)
{
}

void
JsonWriter::newline_indent()
{
    if (!pretty_)
        return;
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::prepare_value()
{
    if (key_pending_) {
        key_pending_ = false;
        return;  // separator already emitted with the key
    }
    SP_ASSERT(!(wrote_root_ && stack_.empty()),
              "JSON document already has a root value");
    if (!stack_.empty()) {
        SP_ASSERT(stack_.back() == Scope::kArray,
                  "object members need a key() first");
        if (has_items_.back())
            os_ << ',';
        has_items_.back() = true;
        newline_indent();
    }
}

JsonWriter&
JsonWriter::key(std::string_view k)
{
    SP_ASSERT(!stack_.empty() && stack_.back() == Scope::kObject,
              "key() outside an object");
    SP_ASSERT(!key_pending_, "two keys in a row");
    if (has_items_.back())
        os_ << ',';
    has_items_.back() = true;
    newline_indent();
    os_ << '"' << json_escape(k) << "\":";
    if (pretty_)
        os_ << ' ';
    key_pending_ = true;
    return *this;
}

JsonWriter&
JsonWriter::begin_object()
{
    prepare_value();
    os_ << '{';
    stack_.push_back(Scope::kObject);
    has_items_.push_back(false);
    return *this;
}

JsonWriter&
JsonWriter::end_object()
{
    SP_ASSERT(!stack_.empty() && stack_.back() == Scope::kObject);
    SP_ASSERT(!key_pending_, "dangling key at end_object()");
    const bool had = has_items_.back();
    stack_.pop_back();
    has_items_.pop_back();
    if (had)
        newline_indent();
    os_ << '}';
    wrote_root_ = true;
    return *this;
}

JsonWriter&
JsonWriter::begin_array()
{
    prepare_value();
    os_ << '[';
    stack_.push_back(Scope::kArray);
    has_items_.push_back(false);
    return *this;
}

JsonWriter&
JsonWriter::end_array()
{
    SP_ASSERT(!stack_.empty() && stack_.back() == Scope::kArray);
    const bool had = has_items_.back();
    stack_.pop_back();
    has_items_.pop_back();
    if (had)
        newline_indent();
    os_ << ']';
    wrote_root_ = true;
    return *this;
}

JsonWriter&
JsonWriter::value(std::string_view v)
{
    prepare_value();
    os_ << '"' << json_escape(v) << '"';
    wrote_root_ = true;
    return *this;
}

JsonWriter&
JsonWriter::value(const char* v)
{
    return value(std::string_view(v));
}

JsonWriter&
JsonWriter::value(double v)
{
    prepare_value();
    os_ << json_number(v);
    wrote_root_ = true;
    return *this;
}

JsonWriter&
JsonWriter::value(std::int64_t v)
{
    prepare_value();
    os_ << v;
    wrote_root_ = true;
    return *this;
}

JsonWriter&
JsonWriter::value(int v)
{
    return value(static_cast<std::int64_t>(v));
}

JsonWriter&
JsonWriter::value(bool v)
{
    prepare_value();
    os_ << (v ? "true" : "false");
    wrote_root_ = true;
    return *this;
}

JsonWriter&
JsonWriter::null()
{
    prepare_value();
    os_ << "null";
    wrote_root_ = true;
    return *this;
}

JsonWriter&
JsonWriter::raw(std::string_view json)
{
    prepare_value();
    os_ << json;
    wrote_root_ = true;
    return *this;
}

} // namespace shiftpar::util
