/**
 * @file
 * Minimal recursive-descent JSON parser.
 *
 * Started life as a test-only well-formedness checker for the observability
 * outputs; promoted into `util/` once production tools needed to *read*
 * those documents too (`tools/tracestat` consumes Chrome traces,
 * `bench_sim_core` appends to its own trajectory file). Objects parse into
 * `std::map`, so iteration order is deterministic by construction — exactly
 * what the determinism discipline requires of anything that later feeds an
 * ordered emitter. Throws std::runtime_error on any syntax violation, so
 * "parses without throwing" doubles as a well-formedness check.
 */

#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace shiftpar::util {

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

/** A parsed JSON term. */
struct JsonValue
{
    std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
                 JsonObject>
        v = nullptr;

    bool is_null() const { return std::holds_alternative<std::nullptr_t>(v); }
    bool is_object() const { return std::holds_alternative<JsonObject>(v); }
    bool is_array() const { return std::holds_alternative<JsonArray>(v); }
    bool is_string() const { return std::holds_alternative<std::string>(v); }
    bool is_number() const { return std::holds_alternative<double>(v); }

    const JsonObject& obj() const { return std::get<JsonObject>(v); }
    const JsonArray& arr() const { return std::get<JsonArray>(v); }
    const std::string& str() const { return std::get<std::string>(v); }
    double num() const { return std::get<double>(v); }
    bool boolean() const { return std::get<bool>(v); }

    bool has(const std::string& k) const
    {
        return is_object() && obj().count(k) > 0;
    }

    const JsonValue& at(const std::string& k) const
    {
        auto it = obj().find(k);
        if (it == obj().end())
            throw std::runtime_error("missing key: " + k);
        return it->second;
    }
};

/** Parse `text`; throws std::runtime_error on malformed JSON. */
JsonValue parse_json(const std::string& text);

} // namespace shiftpar::util
