/**
 * @file
 * Minimal leveled logging and error-termination helpers.
 *
 * Follows the gem5 convention: `fatal()` is for user errors (bad
 * configuration — exits cleanly with code 1), `panic()` is for internal
 * invariant violations (aborts). `SP_ASSERT` is an always-on assertion used
 * at module boundaries where an invariant violation would silently corrupt
 * simulation results.
 */

#pragma once

#include <sstream>
#include <string>

namespace shiftpar {

/** Severity levels for the global logger. */
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kSilent = 4 };

/** Set the global minimum level that will be emitted. */
void set_log_level(LogLevel level);

/** @return the current global log level. */
LogLevel log_level();

/** Emit one log line at `level` (filtered by the global level). */
void log_message(LogLevel level, const std::string& msg);

/** Terminate due to a user/configuration error (exit code 1). */
[[noreturn]] void fatal(const std::string& msg);

/** Terminate due to an internal invariant violation (abort). */
[[noreturn]] void panic(const std::string& msg);

namespace detail {

/** Builds a message from stream-style arguments. */
template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

} // namespace shiftpar

/** Log helpers accepting stream-style argument lists. */
#define SP_LOG_DEBUG(...) \
    ::shiftpar::log_message(::shiftpar::LogLevel::kDebug, \
                            ::shiftpar::detail::concat(__VA_ARGS__))
#define SP_LOG_INFO(...) \
    ::shiftpar::log_message(::shiftpar::LogLevel::kInfo, \
                            ::shiftpar::detail::concat(__VA_ARGS__))
#define SP_LOG_WARN(...) \
    ::shiftpar::log_message(::shiftpar::LogLevel::kWarn, \
                            ::shiftpar::detail::concat(__VA_ARGS__))
#define SP_LOG_ERROR(...) \
    ::shiftpar::log_message(::shiftpar::LogLevel::kError, \
                            ::shiftpar::detail::concat(__VA_ARGS__))

/** Always-on assertion; aborts with file/line context on failure. */
#define SP_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ::shiftpar::panic(::shiftpar::detail::concat( \
                "assertion failed: ", #cond, " at ", __FILE__, ":", \
                __LINE__, " ", ##__VA_ARGS__)); \
        } \
    } while (0)

/**
 * Debug-build assertion for hot-path invariants (per-pop event ordering,
 * per-post causality). Compiled out under NDEBUG so Release replay loops
 * pay nothing; the sanitizer CI job builds Debug to exercise these.
 */
#ifdef NDEBUG
#define SP_DEBUG_ASSERT(...) \
    do { \
    } while (0)
#else
#define SP_DEBUG_ASSERT(...) SP_ASSERT(__VA_ARGS__)
#endif
