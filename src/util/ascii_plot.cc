#include "util/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/logging.h"

namespace shiftpar {

namespace {

/** Glyphs assigned to series in order. */
constexpr const char* kGlyphs = "*o+x#@%&";

/** Resample `v` to `n` points by averaging each destination bucket. */
std::vector<double>
resample(const std::vector<double>& v, int n)
{
    std::vector<double> out(static_cast<std::size_t>(n), 0.0);
    if (v.empty())
        return out;
    for (int i = 0; i < n; ++i) {
        const std::size_t lo = v.size() * static_cast<std::size_t>(i) /
                               static_cast<std::size_t>(n);
        std::size_t hi = v.size() * static_cast<std::size_t>(i + 1) /
                         static_cast<std::size_t>(n);
        hi = std::max(hi, lo + 1);
        double acc = 0.0;
        for (std::size_t j = lo; j < hi && j < v.size(); ++j)
            acc += v[j];
        out[static_cast<std::size_t>(i)] =
            acc / static_cast<double>(std::min(hi, v.size()) - lo);
    }
    return out;
}

std::string
fmt_tick(double v)
{
    std::ostringstream os;
    if (std::abs(v) >= 1e6)
        os << std::fixed << std::setprecision(1) << v / 1e6 << "M";
    else if (std::abs(v) >= 1e3)
        os << std::fixed << std::setprecision(1) << v / 1e3 << "k";
    else
        os << std::fixed << std::setprecision(v < 10 ? 2 : 0) << v;
    return os.str();
}

} // namespace

std::string
render_line_plot(const std::vector<PlotSeries>& series,
                 const LinePlotOptions& opts)
{
    SP_ASSERT(opts.width >= 8 && opts.height >= 2);
    if (series.empty())
        return "(empty plot)\n";

    // Resample all series and find the global range.
    std::vector<std::vector<double>> rs;
    double lo = 1e300;
    double hi = -1e300;
    for (const auto& s : series) {
        rs.push_back(resample(s.values, opts.width));
        for (double v : rs.back()) {
            if (opts.log_y && v <= 0.0)
                continue;
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
    }
    if (lo > hi) {
        lo = 0.0;
        hi = 1.0;
    }
    if (hi == lo)
        hi = lo + 1.0;

    const auto to_row = [&](double v) -> int {
        double t;
        if (opts.log_y) {
            if (v <= 0.0)
                return -1;
            t = (std::log(v) - std::log(lo)) /
                (std::log(hi) - std::log(lo));
        } else {
            t = (v - lo) / (hi - lo);
        }
        t = std::clamp(t, 0.0, 1.0);
        return static_cast<int>(std::lround(t * (opts.height - 1)));
    };

    // Paint the grid bottom-up.
    std::vector<std::string> grid(
        static_cast<std::size_t>(opts.height),
        std::string(static_cast<std::size_t>(opts.width), ' '));
    for (std::size_t si = 0; si < rs.size(); ++si) {
        const char glyph = kGlyphs[si % 8];
        for (int x = 0; x < opts.width; ++x) {
            const int row = to_row(rs[si][static_cast<std::size_t>(x)]);
            if (row >= 0)
                grid[static_cast<std::size_t>(row)]
                    [static_cast<std::size_t>(x)] = glyph;
        }
    }

    std::ostringstream os;
    if (!opts.y_label.empty() || opts.log_y)
        os << opts.y_label << (opts.log_y ? " (log scale)" : "") << "\n";
    const std::string hi_tick = fmt_tick(hi);
    const std::string lo_tick = fmt_tick(lo);
    const std::size_t margin = std::max(hi_tick.size(), lo_tick.size());
    for (int r = opts.height - 1; r >= 0; --r) {
        std::string tick;
        if (r == opts.height - 1)
            tick = hi_tick;
        else if (r == 0)
            tick = lo_tick;
        os << std::setw(static_cast<int>(margin)) << tick << " |"
           << grid[static_cast<std::size_t>(r)] << "\n";
    }
    os << std::string(margin + 1, ' ') << '+'
       << std::string(static_cast<std::size_t>(opts.width), '-') << "\n";
    if (!opts.x_label.empty()) {
        os << std::string(margin + 2, ' ') << opts.x_label << "\n";
    }
    os << std::string(margin + 2, ' ');
    for (std::size_t si = 0; si < series.size(); ++si) {
        if (si)
            os << "   ";
        os << kGlyphs[si % 8] << " " << series[si].name;
    }
    os << "\n";
    return os.str();
}

std::string
render_bar_chart(const std::vector<std::string>& labels,
                 const std::vector<double>& values,
                 const std::string& value_label, int width)
{
    SP_ASSERT(labels.size() == values.size());
    if (labels.empty())
        return "(empty chart)\n";
    double hi = 0.0;
    std::size_t label_w = 0;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        hi = std::max(hi, values[i]);
        label_w = std::max(label_w, labels[i].size());
    }
    if (hi <= 0.0)
        hi = 1.0;

    std::ostringstream os;
    if (!value_label.empty())
        os << value_label << "\n";
    for (std::size_t i = 0; i < labels.size(); ++i) {
        const int len = static_cast<int>(
            std::lround(values[i] / hi * width));
        os << std::setw(static_cast<int>(label_w)) << labels[i] << " |"
           << std::string(static_cast<std::size_t>(std::max(0, len)), '#')
           << " " << fmt_tick(values[i]) << "\n";
    }
    return os.str();
}

} // namespace shiftpar
