#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace shiftpar::util {

ThreadPool::ThreadPool(int num_threads)
{
    if (num_threads <= 0)
        num_threads = default_concurrency();
    workers_.reserve(static_cast<std::size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_ready_.notify_all();
    for (auto& w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    work_ready_.notify_one();
}

void
ThreadPool::wait_idle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

int
ThreadPool::default_concurrency()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

void
ThreadPool::worker_loop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        work_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty())
            return;  // stopping and drained
        auto task = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
        lock.unlock();
        task();
        lock.lock();
        --active_;
        if (queue_.empty() && active_ == 0)
            idle_.notify_all();
    }
}

} // namespace shiftpar::util
