/**
 * @file
 * Tiny CSV writer used by bench binaries to persist figure series.
 *
 * Bench binaries write one CSV per figure into `bench_results/` so the
 * series can be re-plotted outside the harness. Fields containing commas or
 * quotes are quoted per RFC 4180.
 */

#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace shiftpar {

/** Streams rows to a CSV file; creates parent directory if needed. */
class CsvWriter
{
  public:
    /**
     * Open `path` for writing and emit the header row.
     *
     * @param path Output file path; its parent directory is created.
     * @param header Column names.
     */
    CsvWriter(const std::string& path, const std::vector<std::string>& header);

    /** Append a row of string fields (must match header arity). */
    void add_row(const std::vector<std::string>& row);

    /** Append a row of doubles (formatted with max precision). */
    void add_row(const std::vector<double>& row);

    /** @return true if the file opened successfully. */
    bool ok() const { return static_cast<bool>(out_); }

  private:
    void write_fields(const std::vector<std::string>& fields);

    std::ofstream out_;
    std::size_t arity_;
};

} // namespace shiftpar
