/**
 * @file
 * Unit helpers and conversions used throughout the simulator.
 *
 * All internal times are held in double-precision seconds, data sizes in
 * double-precision bytes, and compute in double-precision FLOPs. The helpers
 * here make call sites self-documenting (e.g. `gb(141)` instead of a raw
 * constant) and centralize the decimal-vs-binary convention: we follow vendor
 * datasheet convention (decimal GB/TB, as H200's "141 GB" and "4.8 TB/s"
 * are specified) everywhere.
 */

#pragma once

#include <cstdint>

namespace shiftpar {

/** Kilo/mega/giga/tera multipliers (decimal, datasheet convention). */
inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;

/** @return `x` decimal kilobytes in bytes. */
inline constexpr double kb(double x) { return x * kKilo; }
/** @return `x` megabytes in bytes. */
inline constexpr double mb(double x) { return x * kMega; }
/** @return `x` gigabytes in bytes. */
inline constexpr double gb(double x) { return x * kGiga; }
/** @return `x` terabytes in bytes. */
inline constexpr double tb(double x) { return x * kTera; }

/** @return `x` teraFLOPs (or TFLOP/s) in FLOPs. */
inline constexpr double tflops(double x) { return x * kTera; }
/** @return `x` gigaFLOPs in FLOPs. */
inline constexpr double gflops(double x) { return x * kGiga; }

/** @return `x` microseconds in seconds. */
inline constexpr double usec(double x) { return x * 1e-6; }
/** @return `x` milliseconds in seconds. */
inline constexpr double msec(double x) { return x * 1e-3; }

/** @return seconds expressed in milliseconds (for reporting). */
inline constexpr double to_ms(double seconds) { return seconds * 1e3; }
/** @return seconds expressed in microseconds (for reporting). */
inline constexpr double to_us(double seconds) { return seconds * 1e6; }

/** @return bytes expressed in decimal gigabytes (for reporting). */
inline constexpr double to_gb(double bytes) { return bytes / kGiga; }

/** Integer ceiling division for non-negative operands. */
inline constexpr std::int64_t
ceil_div(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

/** Round `a` up to the next multiple of `b` (b > 0). */
inline constexpr std::int64_t
round_up(std::int64_t a, std::int64_t b)
{
    return ceil_div(a, b) * b;
}

} // namespace shiftpar
