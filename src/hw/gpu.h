/**
 * @file
 * GPU device model: capacity, bandwidth, and roofline timing.
 *
 * The simulator models a GPU with datasheet peaks derated by empirical
 * efficiency factors. Kernel time follows the roofline model: the maximum of
 * compute time (FLOPs / achievable FLOP rate) and memory time (bytes moved /
 * achievable bandwidth), plus a fixed per-kernel launch overhead. This level
 * of fidelity is what the paper's own complexity analysis (Table 2) relies
 * on, and is sufficient to reproduce the relative ordering of parallelism
 * strategies.
 */

#pragma once

#include <string>

namespace shiftpar::hw {

/**
 * Datasheet specification plus derating knobs for one GPU.
 *
 * Efficiency factors represent the fraction of the datasheet peak that real
 * transformer kernels achieve (large-GEMM MFU, streaming HBM efficiency).
 * Defaults are calibrated in `presets.cc` against the paper's published
 * throughput numbers.
 */
struct GpuSpec
{
    std::string name;

    /** Peak dense FP8 tensor-core throughput, FLOP/s. */
    double peak_fp8_flops = 0.0;

    /** Peak dense FP16/BF16 tensor-core throughput, FLOP/s. */
    double peak_fp16_flops = 0.0;

    /** HBM capacity, bytes. */
    double hbm_bytes = 0.0;

    /** HBM peak bandwidth, bytes/s. */
    double hbm_bw = 0.0;

    /** Achievable fraction of peak FLOPs for large GEMMs (MFU ceiling). */
    double gemm_efficiency = 0.55;

    /** Achievable fraction of peak FLOPs for attention kernels. */
    double attn_efficiency = 0.40;

    /** Achievable fraction of peak HBM bandwidth for streaming reads. */
    double mem_efficiency = 0.75;

    /** Fixed per-kernel launch/dispatch overhead, seconds. */
    double kernel_overhead = 2.0e-6;

    /** @return achievable FLOP/s for dense GEMM at `dtype_bytes` weights. */
    double effective_gemm_flops(double dtype_bytes) const;

    /** @return achievable FLOP/s for attention kernels. */
    double effective_attn_flops(double dtype_bytes) const;

    /** @return achievable HBM bandwidth, bytes/s. */
    double effective_bw() const { return hbm_bw * mem_efficiency; }

    /**
     * Roofline time for one fused kernel region.
     *
     * @param flops Arithmetic work in FLOPs.
     * @param bytes HBM traffic in bytes (weights + activations + cache).
     * @param compute_rate Achievable FLOP/s (use one of the helpers above).
     * @return max(compute, memory) time + launch overhead, seconds.
     */
    double kernel_time(double flops, double bytes, double compute_rate) const;
};

} // namespace shiftpar::hw
