/**
 * @file
 * Node topology: a set of identical GPUs joined by one fabric, plus the
 * rank-group constructions used by the parallelism strategies.
 *
 * Rank convention (matches the paper's Figure 6 example for SP=3, TP=2):
 * a global rank r encodes (sp_idx, tp_idx) as r = sp_idx * TP + tp_idx, so
 *  - TP groups are consecutive ranks:   [[0,1], [2,3], [4,5]]
 *  - SP groups are strided ranks:       [[0,2,4], [1,3,5]]
 *  - the SP_TP group (used by the shift configuration to load TP=P weights
 *    in KV-cache-invariant order, Section 3.3.2) enumerates ranks
 *    SP-major within each TP column:    [[0,2,4,1,3,5]]
 */

#pragma once

#include <vector>

#include "hw/gpu.h"
#include "hw/interconnect.h"

namespace shiftpar::hw {

/** One multi-GPU server node. */
struct Node
{
    GpuSpec gpu;
    LinkSpec link;
    int num_gpus = 8;

    /** @return a collective model over this node's fabric. */
    CollectiveModel collectives() const { return CollectiveModel(link); }

    /** @return total HBM across the node, bytes. */
    double total_hbm() const { return gpu.hbm_bytes * num_gpus; }
};

/**
 * Build the TP groups for an (SP, TP) decomposition of `sp * tp` ranks.
 *
 * @return sp groups of tp consecutive ranks each.
 */
std::vector<std::vector<int>> tp_groups(int sp, int tp);

/**
 * Build the SP groups for an (SP, TP) decomposition.
 *
 * @return tp groups of sp ranks each, strided by tp.
 */
std::vector<std::vector<int>> sp_groups(int sp, int tp);

/**
 * Build the single SP_TP group: all ranks ordered SP-major within each TP
 * column — the rank order in which the shift configuration's TP=P weights
 * must be loaded to preserve KV-cache invariance (Section 3.3.2).
 */
std::vector<int> sp_tp_group(int sp, int tp);

} // namespace shiftpar::hw
