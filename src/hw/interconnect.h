/**
 * @file
 * GPU interconnect and collective-communication cost models.
 *
 * Collectives are modeled with alpha-beta costs: a latency term per
 * communication step plus a bandwidth term proportional to the bytes each
 * rank must move. Two algorithm families are supported:
 *
 *  - `kRing`: classic ring algorithms (all-reduce: 2(P-1) steps; gather /
 *    scatter: P-1 steps) — models PCIe/older NVLink fabrics.
 *  - `kSwitch`: NVSwitch-style full-bisection fabric where all ranks
 *    exchange simultaneously; all-to-all completes in one phase, all-reduce
 *    in two (reduce-scatter + all-gather).
 *
 * Per Table 2 of the paper, the distinguishing property is the *per-rank
 * communication volume*: all-reduce moves O(n·d) per rank regardless of
 * degree, while SP's all-to-all moves O(n·d / SP) — the models below encode
 * those volumes exactly.
 */

#pragma once

#include <string>

namespace shiftpar::hw {

/** Collective algorithm family (fabric type). */
enum class FabricKind { kRing, kSwitch };

/** Physical link/fabric specification plus derating. */
struct LinkSpec
{
    std::string name;

    /** Per-GPU injection bandwidth into the fabric, bytes/s. */
    double bw = 0.0;

    /** Per-step software+hardware latency (NCCL launch, hop), seconds. */
    double latency = 0.0;

    /** Fraction of rated bandwidth collectives achieve (algorithmic BW). */
    double efficiency = 0.80;

    FabricKind kind = FabricKind::kSwitch;

    /** @return achievable bytes/s. */
    double effective_bw() const { return bw * efficiency; }
};

/**
 * Alpha-beta timing for NCCL-style collectives over a rank group.
 *
 * Byte-size conventions (matching NCCL's count semantics):
 *  - all_reduce:     `bytes` = size of the (replicated) tensor on each rank.
 *  - all_gather:     `bytes` = size of the *gathered result* on each rank.
 *  - reduce_scatter: `bytes` = size of the *input* tensor on each rank.
 *  - all_to_all:     `bytes` = size of each rank's local send buffer
 *                     (1/P of it stays local).
 */
class CollectiveModel
{
  public:
    explicit CollectiveModel(LinkSpec link);

    /** @return the link specification in use. */
    const LinkSpec& link() const { return link_; }

    /** Time for an all-reduce of `bytes` across `nranks`, seconds. */
    double all_reduce(double bytes, int nranks) const;

    /** Time for an all-gather producing `bytes` on each rank, seconds. */
    double all_gather(double bytes, int nranks) const;

    /** Time for a reduce-scatter of `bytes` input per rank, seconds. */
    double reduce_scatter(double bytes, int nranks) const;

    /** Time for an all-to-all with `bytes` local buffer per rank, seconds. */
    double all_to_all(double bytes, int nranks) const;

    /**
     * Per-rank wire volume of an all-reduce (Table 2 accounting), bytes.
     * Ring all-reduce sends 2(P-1)/P of the tensor per rank.
     */
    static double all_reduce_volume(double bytes, int nranks);

    /** Per-rank wire volume of an all-to-all, bytes ((P-1)/P of buffer). */
    static double all_to_all_volume(double bytes, int nranks);

    /** Per-rank wire volume of an all-gather, bytes. */
    static double all_gather_volume(double bytes, int nranks);

  private:
    LinkSpec link_;
};

} // namespace shiftpar::hw
