/**
 * @file
 * GPU interconnect and collective-communication cost models.
 *
 * Collectives are modeled with alpha-beta costs: a latency term per
 * communication step plus a bandwidth term proportional to the bytes each
 * rank must move. Two algorithm families are supported:
 *
 *  - `kRing`: classic ring algorithms (all-reduce: 2(P-1) steps; gather /
 *    scatter: P-1 steps) — models PCIe/older NVLink fabrics.
 *  - `kSwitch`: NVSwitch-style full-bisection fabric where all ranks
 *    exchange simultaneously; all-to-all completes in one phase, all-reduce
 *    in two (reduce-scatter + all-gather).
 *
 * Per Table 2 of the paper, the distinguishing property is the *per-rank
 * communication volume*: all-reduce moves O(n·d) per rank regardless of
 * degree, while SP's all-to-all moves O(n·d / SP) — the models below encode
 * those volumes exactly.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace shiftpar::hw {

/** Collective algorithm family (fabric type). */
enum class FabricKind { kRing, kSwitch };

/** Physical link/fabric specification plus derating. */
struct LinkSpec
{
    std::string name;

    /** Per-GPU injection bandwidth into the fabric, bytes/s. */
    double bw = 0.0;

    /** Per-step software+hardware latency (NCCL launch, hop), seconds. */
    double latency = 0.0;

    /** Fraction of rated bandwidth collectives achieve (algorithmic BW). */
    double efficiency = 0.80;

    FabricKind kind = FabricKind::kSwitch;

    /** @return achievable bytes/s. */
    double effective_bw() const { return bw * efficiency; }
};

/**
 * Alpha-beta timing for NCCL-style collectives over a rank group.
 *
 * Byte-size conventions (matching NCCL's count semantics):
 *  - all_reduce:     `bytes` = size of the (replicated) tensor on each rank.
 *  - all_gather:     `bytes` = size of the *gathered result* on each rank.
 *  - reduce_scatter: `bytes` = size of the *input* tensor on each rank.
 *  - all_to_all:     `bytes` = size of each rank's local send buffer
 *                     (1/P of it stays local).
 */
class CollectiveModel
{
  public:
    explicit CollectiveModel(LinkSpec link);

    /** @return the link specification in use. */
    const LinkSpec& link() const { return link_; }

    /** Time for an all-reduce of `bytes` across `nranks`, seconds. */
    double all_reduce(double bytes, int nranks) const;

    /** Time for an all-gather producing `bytes` on each rank, seconds. */
    double all_gather(double bytes, int nranks) const;

    /** Time for a reduce-scatter of `bytes` input per rank, seconds. */
    double reduce_scatter(double bytes, int nranks) const;

    /** Time for an all-to-all with `bytes` local buffer per rank, seconds. */
    double all_to_all(double bytes, int nranks) const;

    /**
     * Per-rank wire volume of an all-reduce (Table 2 accounting), bytes.
     * Ring all-reduce sends 2(P-1)/P of the tensor per rank.
     */
    static double all_reduce_volume(double bytes, int nranks);

    /** Per-rank wire volume of an all-to-all, bytes ((P-1)/P of buffer). */
    static double all_to_all_volume(double bytes, int nranks);

    /** Per-rank wire volume of an all-gather, bytes. */
    static double all_gather_volume(double bytes, int nranks);

  private:
    LinkSpec link_;
};

/**
 * FIFO occupancy model of one point-to-point link (e.g. the fabric
 * between a prefill and a decode pool). Point-to-point transfers
 * serialize: a transfer requested while the link is busy starts when the
 * link frees. `reserve` is the only way time moves forward; `cancel`
 * releases a queued or in-flight reservation and pulls everything behind
 * it earlier. Callers that schedule completion events against `reserve`'s
 * window revalidate them against `window(id)` when `cancel` reports a
 * shifted id.
 */
class LinkChannel
{
  public:
    /** Fatal when the link has no usable bandwidth. */
    explicit LinkChannel(LinkSpec link);

    /** Occupancy window of one reservation on the link. */
    struct Window
    {
        double start = 0.0;
        double end = 0.0;
    };

    /**
     * Reserve the link for a `bytes`-sized transfer requested at time `t`.
     * The transfer starts at `max(t, busy_until())` and occupies the link
     * for `occupancy(bytes)` seconds. `id` must be unique per reservation.
     */
    Window reserve(std::int64_t id, double t, double bytes);

    /**
     * Cancel reservation `id` at time `t`. A transfer that has not started
     * is removed outright; one in flight is truncated at `t` (the bytes
     * already sent stay sent). Transfers queued behind it shift earlier.
     * No-op (empty result) when `id` is absent or already finished by `t`.
     *
     * @return ids whose occupancy window changed.
     */
    std::vector<std::int64_t> cancel(std::int64_t id, double t);

    /**
     * @return the current window of reservation `id`; NaN bounds when the
     *         id was never reserved or its reservation was cancelled
     *         before starting.
     */
    Window window(std::int64_t id) const;

    /** @return the time the link next frees up (0 when never used). */
    double busy_until() const;

    /** @return seconds a `bytes`-sized transfer occupies the link. */
    double occupancy(double bytes) const;

    /**
     * Degrade (factor > 1) or restore (factor = 1) the link: subsequent
     * `occupancy` computations scale their bandwidth term by `factor`
     * (latency is unaffected — degradation models congestion/lane loss,
     * not added hops). Already-reserved windows keep their timing unless
     * a later `cancel` recomputes them, which uses the factor then in
     * force. At exactly 1.0 the arithmetic is untouched, so unfaulted
     * replays stay bit-identical.
     */
    void set_rate_multiplier(double factor);

    /** @return the degradation factor in force (1 = healthy). */
    double rate_multiplier() const { return rate_multiplier_; }

    /** @return the link specification in use. */
    const LinkSpec& link() const { return link_; }

  private:
    struct Entry
    {
        std::int64_t id;
        double req;    ///< request time (earliest possible start)
        double bytes;
        double start;
        double end;
        bool cancelled;
    };

    LinkSpec link_;
    std::vector<Entry> entries_;  ///< FIFO reservation order
    double rate_multiplier_ = 1.0;
};

} // namespace shiftpar::hw
