#include "hw/presets.h"

#include "util/units.h"

namespace shiftpar::hw {

GpuSpec
h200()
{
    GpuSpec g;
    g.name = "H200-SXM";
    g.peak_fp8_flops = tflops(1979.0);
    g.peak_fp16_flops = tflops(989.0);
    g.hbm_bytes = gb(141.0);
    g.hbm_bw = tb(4.8);
    g.gemm_efficiency = 0.68;
    g.attn_efficiency = 0.45;
    g.mem_efficiency = 0.78;
    g.kernel_overhead = usec(2.0);
    return g;
}

GpuSpec
h100()
{
    GpuSpec g;
    g.name = "H100-SXM";
    g.peak_fp8_flops = tflops(1979.0);
    g.peak_fp16_flops = tflops(989.0);
    g.hbm_bytes = gb(80.0);
    g.hbm_bw = tb(3.35);
    g.gemm_efficiency = 0.68;
    g.attn_efficiency = 0.45;
    g.mem_efficiency = 0.78;
    g.kernel_overhead = usec(2.0);
    return g;
}

GpuSpec
b200()
{
    GpuSpec g;
    g.name = "B200-SXM";
    g.peak_fp8_flops = tflops(4500.0);
    g.peak_fp16_flops = tflops(2250.0);
    g.hbm_bytes = gb(192.0);
    g.hbm_bw = tb(8.0);
    g.gemm_efficiency = 0.68;
    g.attn_efficiency = 0.45;
    g.mem_efficiency = 0.78;
    g.kernel_overhead = usec(2.0);
    return g;
}

GpuSpec
a100()
{
    GpuSpec g;
    g.name = "A100-SXM-80GB";
    // A100 has no FP8 tensor cores; FP8 weights would run via FP16 paths.
    g.peak_fp8_flops = tflops(312.0);
    g.peak_fp16_flops = tflops(312.0);
    g.hbm_bytes = gb(80.0);
    g.hbm_bw = tb(2.039);
    g.gemm_efficiency = 0.68;
    g.attn_efficiency = 0.45;
    g.mem_efficiency = 0.78;
    g.kernel_overhead = usec(2.0);
    return g;
}

LinkSpec
nvswitch()
{
    LinkSpec l;
    l.name = "NVSwitch-gen4";
    l.bw = gb(900.0);
    l.latency = usec(6.0);
    l.efficiency = 0.70;
    l.kind = FabricKind::kSwitch;
    return l;
}

LinkSpec
pcie_gen5()
{
    LinkSpec l;
    l.name = "PCIe-gen5-x16";
    l.bw = gb(64.0);
    l.latency = usec(10.0);
    l.efficiency = 0.80;
    l.kind = FabricKind::kRing;
    return l;
}

Node
h200_node(int num_gpus)
{
    Node n;
    n.gpu = h200();
    n.link = nvswitch();
    n.num_gpus = num_gpus;
    return n;
}

} // namespace shiftpar::hw
