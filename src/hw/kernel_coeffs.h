/**
 * @file
 * Per-kernel-class cost coefficients for the kernel-decomposed cost model.
 *
 * `parallel::KernelCostModel` times every kernel with the same linear form
 *
 *     t = alpha + beta * flops + gamma * bytes
 *
 * under one of four coefficient classes (GEMM, attention, norm,
 * collective). Linearity in the parameters is deliberate: it makes the
 * model directly fittable to external profile CSVs by ordinary least
 * squares (`tools/calibrate`), and a fitted `shiftpar.calibration v1`
 * report plugs straight back in via `load_calibrated_coeffs`.
 *
 * Defaults are derived from the `GpuSpec`/`LinkSpec` presets: beta is the
 * reciprocal achievable FLOP rate, gamma the reciprocal achievable
 * bandwidth, alpha the launch (or per-phase link) latency. Unlike the
 * roofline model's max(compute, memory), the linear form charges compute
 * and memory additively — the two models intentionally disagree so
 * calibration has something to correct.
 */

#pragma once

#include <string>

#include "hw/gpu.h"
#include "hw/interconnect.h"

namespace shiftpar::hw {

/** One class's linear cost coefficients (seconds, seconds/FLOP, s/byte). */
struct KernelCoeff
{
    double alpha = 0.0;  ///< fixed launch / per-phase latency, seconds
    double beta = 0.0;   ///< seconds per FLOP
    double gamma = 0.0;  ///< seconds per byte of HBM (or wire) traffic

    /** @return alpha + beta*flops + gamma*bytes. */
    double seconds(double flops, double bytes) const
    {
        return alpha + beta * flops + gamma * bytes;
    }
};

/** The full per-kernel-class coefficient table. */
struct KernelCoeffs
{
    /** Hardware the coefficients describe (preset or calibration label). */
    std::string hardware;

    KernelCoeff gemm;        ///< QKV/O/MLP/LM-head GEMMs
    KernelCoeff attention;   ///< attention prefill/decode kernels
    KernelCoeff norm;        ///< norms + residual elementwise traffic
    KernelCoeff collective;  ///< alpha per phase, gamma per wire byte
};

/** Derive a default table from device + link specs. */
KernelCoeffs derive_kernel_coeffs(const GpuSpec& gpu, const LinkSpec& link);

/**
 * Named hardware preset ("h200", "h100", "b200", "a100"), each over the
 * NVSwitch fabric; fatal() on an unknown name.
 */
KernelCoeffs kernel_coeffs_preset(const std::string& name);

/**
 * Load a coefficient table from a `shiftpar.calibration` v1 fit report
 * (the JSON `tools/calibrate` emits). fatal() on missing file, schema
 * mismatch, or absent kernel classes.
 */
KernelCoeffs load_calibrated_coeffs(const std::string& path);

} // namespace shiftpar::hw
