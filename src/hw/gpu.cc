#include "hw/gpu.h"

#include <algorithm>

#include "util/logging.h"

namespace shiftpar::hw {

double
GpuSpec::effective_gemm_flops(double dtype_bytes) const
{
    // FP8 (1 byte) runs at the FP8 peak; anything wider at the FP16 peak.
    const double peak = dtype_bytes <= 1.0 ? peak_fp8_flops : peak_fp16_flops;
    return peak * gemm_efficiency;
}

double
GpuSpec::effective_attn_flops(double dtype_bytes) const
{
    const double peak = dtype_bytes <= 1.0 ? peak_fp8_flops : peak_fp16_flops;
    return peak * attn_efficiency;
}

double
GpuSpec::kernel_time(double flops, double bytes, double compute_rate) const
{
    SP_ASSERT(compute_rate > 0.0 && effective_bw() > 0.0);
    SP_ASSERT(flops >= 0.0 && bytes >= 0.0);
    const double compute = flops / compute_rate;
    const double memory = bytes / effective_bw();
    return std::max(compute, memory) + kernel_overhead;
}

} // namespace shiftpar::hw
