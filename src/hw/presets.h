/**
 * @file
 * Hardware presets used by the evaluation.
 *
 * The paper's testbed is an AWS p5en.48xlarge: 8x H200 (141 GB HBM3e,
 * 4.8 TB/s, 1979 dense FP8 TFLOPS) joined by NVSwitch at 900 GB/s per GPU.
 * Efficiency knobs are calibrated so the simulated Llama-70B results land in
 * the paper's ballpark (see DESIGN.md Section 5 and EXPERIMENTS.md).
 */

#pragma once

#include "hw/topology.h"

namespace shiftpar::hw {

/** NVIDIA H200 SXM (datasheet peaks, calibrated efficiencies). */
GpuSpec h200();

/** NVIDIA H100 SXM (80 GB, 3.35 TB/s) for sensitivity runs. */
GpuSpec h100();

/** NVIDIA B200 SXM (192 GB, 8 TB/s, ~4.5 PFLOPS dense FP8). */
GpuSpec b200();

/** NVIDIA A100 SXM 80 GB (no FP8; FP16 peak used) for sensitivity runs. */
GpuSpec a100();

/** Fourth-generation NVSwitch fabric (900 GB/s per GPU). */
LinkSpec nvswitch();

/** PCIe Gen5 x16-class fabric (ring collectives) for sensitivity runs. */
LinkSpec pcie_gen5();

/** The paper's evaluation node: 8x H200 with NVSwitch. */
Node h200_node(int num_gpus = 8);

} // namespace shiftpar::hw
