#include "hw/interconnect.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace shiftpar::hw {

CollectiveModel::CollectiveModel(LinkSpec link)
    : link_(std::move(link))
{
    SP_ASSERT(link_.bw > 0.0 && link_.efficiency > 0.0);
}

double
CollectiveModel::all_reduce(double bytes, int nranks) const
{
    SP_ASSERT(bytes >= 0.0 && nranks >= 1);
    if (nranks == 1)
        return 0.0;
    const double p = static_cast<double>(nranks);
    const double vol = all_reduce_volume(bytes, nranks);
    // Ring: 2(P-1) latency steps. Switch fabric: reduce-scatter + all-gather,
    // two phases of simultaneous exchange.
    const double steps =
        link_.kind == FabricKind::kRing ? 2.0 * (p - 1.0) : 2.0;
    return vol / link_.effective_bw() + steps * link_.latency;
}

double
CollectiveModel::all_gather(double bytes, int nranks) const
{
    SP_ASSERT(bytes >= 0.0 && nranks >= 1);
    if (nranks == 1)
        return 0.0;
    const double p = static_cast<double>(nranks);
    const double vol = all_gather_volume(bytes, nranks);
    const double steps = link_.kind == FabricKind::kRing ? (p - 1.0) : 1.0;
    return vol / link_.effective_bw() + steps * link_.latency;
}

double
CollectiveModel::reduce_scatter(double bytes, int nranks) const
{
    // Symmetric to all-gather in both volume and steps.
    return all_gather(bytes, nranks);
}

double
CollectiveModel::all_to_all(double bytes, int nranks) const
{
    SP_ASSERT(bytes >= 0.0 && nranks >= 1);
    if (nranks == 1)
        return 0.0;
    const double p = static_cast<double>(nranks);
    const double vol = all_to_all_volume(bytes, nranks);
    // On a switch all pairwise exchanges proceed simultaneously (one phase);
    // a ring serializes P-1 neighbor rounds.
    const double steps = link_.kind == FabricKind::kRing ? (p - 1.0) : 1.0;
    return vol / link_.effective_bw() + steps * link_.latency;
}

double
CollectiveModel::all_reduce_volume(double bytes, int nranks)
{
    if (nranks <= 1)
        return 0.0;
    const double p = static_cast<double>(nranks);
    return 2.0 * (p - 1.0) / p * bytes;
}

double
CollectiveModel::all_to_all_volume(double bytes, int nranks)
{
    if (nranks <= 1)
        return 0.0;
    const double p = static_cast<double>(nranks);
    return (p - 1.0) / p * bytes;
}

double
CollectiveModel::all_gather_volume(double bytes, int nranks)
{
    if (nranks <= 1)
        return 0.0;
    const double p = static_cast<double>(nranks);
    return (p - 1.0) / p * bytes;
}

LinkChannel::LinkChannel(LinkSpec link)
    : link_(std::move(link))
{
    SP_ASSERT(link_.bw > 0.0 && link_.efficiency > 0.0,
              "a link channel needs usable bandwidth");
}

double
LinkChannel::occupancy(double bytes) const
{
    SP_ASSERT(bytes >= 0.0);
    if (rate_multiplier_ != 1.0)
        return bytes * rate_multiplier_ / link_.effective_bw() +
               link_.latency;
    return bytes / link_.effective_bw() + link_.latency;
}

void
LinkChannel::set_rate_multiplier(double factor)
{
    SP_ASSERT(factor >= 1.0, "link degradation cannot speed the link up");
    rate_multiplier_ = factor;
}

double
LinkChannel::busy_until() const
{
    // Active windows are non-decreasing in FIFO order, so the last active
    // entry ends last.
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
        if (!it->cancelled)
            return it->end;
    }
    return 0.0;
}

LinkChannel::Window
LinkChannel::reserve(std::int64_t id, double t, double bytes)
{
    const double start = std::max(t, busy_until());
    const Entry e{id, t, bytes, start, start + occupancy(bytes), false};
    entries_.push_back(e);
    return {e.start, e.end};
}

std::vector<std::int64_t>
LinkChannel::cancel(std::int64_t id, double t)
{
    std::vector<std::int64_t> moved;
    std::size_t pos = entries_.size();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].id == id && !entries_[i].cancelled) {
            pos = i;
            break;
        }
    }
    if (pos == entries_.size() || t >= entries_[pos].end)
        return moved;  // absent or already delivered: nothing to release
    Entry& victim = entries_[pos];
    if (t <= victim.start) {
        victim.cancelled = true;  // never started: the slot frees entirely
    } else {
        victim.end = t;  // in flight: the link is held until the abort
    }
    // Pull everything queued behind the victim earlier.
    double prev_end = 0.0;
    for (std::size_t i = 0; i < pos; ++i) {
        if (!entries_[i].cancelled)
            prev_end = entries_[i].end;
    }
    if (!victim.cancelled)
        prev_end = victim.end;
    for (std::size_t i = pos + 1; i < entries_.size(); ++i) {
        Entry& e = entries_[i];
        if (e.cancelled)
            continue;
        const double start = std::max(e.req, prev_end);
        const double end = start + occupancy(e.bytes);
        if (start != e.start || end != e.end) {
            e.start = start;
            e.end = end;
            moved.push_back(e.id);
        }
        prev_end = e.end;
    }
    return moved;
}

LinkChannel::Window
LinkChannel::window(std::int64_t id) const
{
    for (const Entry& e : entries_) {
        if (e.id == id && !e.cancelled)
            return {e.start, e.end};
    }
    const double nan = std::numeric_limits<double>::quiet_NaN();
    return {nan, nan};
}

} // namespace shiftpar::hw
