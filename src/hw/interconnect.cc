#include "hw/interconnect.h"

#include "util/logging.h"

namespace shiftpar::hw {

CollectiveModel::CollectiveModel(LinkSpec link)
    : link_(std::move(link))
{
    SP_ASSERT(link_.bw > 0.0 && link_.efficiency > 0.0);
}

double
CollectiveModel::all_reduce(double bytes, int nranks) const
{
    SP_ASSERT(bytes >= 0.0 && nranks >= 1);
    if (nranks == 1)
        return 0.0;
    const double p = static_cast<double>(nranks);
    const double vol = all_reduce_volume(bytes, nranks);
    // Ring: 2(P-1) latency steps. Switch fabric: reduce-scatter + all-gather,
    // two phases of simultaneous exchange.
    const double steps =
        link_.kind == FabricKind::kRing ? 2.0 * (p - 1.0) : 2.0;
    return vol / link_.effective_bw() + steps * link_.latency;
}

double
CollectiveModel::all_gather(double bytes, int nranks) const
{
    SP_ASSERT(bytes >= 0.0 && nranks >= 1);
    if (nranks == 1)
        return 0.0;
    const double p = static_cast<double>(nranks);
    const double vol = all_gather_volume(bytes, nranks);
    const double steps = link_.kind == FabricKind::kRing ? (p - 1.0) : 1.0;
    return vol / link_.effective_bw() + steps * link_.latency;
}

double
CollectiveModel::reduce_scatter(double bytes, int nranks) const
{
    // Symmetric to all-gather in both volume and steps.
    return all_gather(bytes, nranks);
}

double
CollectiveModel::all_to_all(double bytes, int nranks) const
{
    SP_ASSERT(bytes >= 0.0 && nranks >= 1);
    if (nranks == 1)
        return 0.0;
    const double p = static_cast<double>(nranks);
    const double vol = all_to_all_volume(bytes, nranks);
    // On a switch all pairwise exchanges proceed simultaneously (one phase);
    // a ring serializes P-1 neighbor rounds.
    const double steps = link_.kind == FabricKind::kRing ? (p - 1.0) : 1.0;
    return vol / link_.effective_bw() + steps * link_.latency;
}

double
CollectiveModel::all_reduce_volume(double bytes, int nranks)
{
    if (nranks <= 1)
        return 0.0;
    const double p = static_cast<double>(nranks);
    return 2.0 * (p - 1.0) / p * bytes;
}

double
CollectiveModel::all_to_all_volume(double bytes, int nranks)
{
    if (nranks <= 1)
        return 0.0;
    const double p = static_cast<double>(nranks);
    return (p - 1.0) / p * bytes;
}

double
CollectiveModel::all_gather_volume(double bytes, int nranks)
{
    if (nranks <= 1)
        return 0.0;
    const double p = static_cast<double>(nranks);
    return (p - 1.0) / p * bytes;
}

} // namespace shiftpar::hw
