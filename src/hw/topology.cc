#include "hw/topology.h"

#include "util/logging.h"

namespace shiftpar::hw {

std::vector<std::vector<int>>
tp_groups(int sp, int tp)
{
    SP_ASSERT(sp >= 1 && tp >= 1);
    std::vector<std::vector<int>> groups(sp);
    for (int i = 0; i < sp; ++i) {
        groups[i].reserve(tp);
        for (int j = 0; j < tp; ++j)
            groups[i].push_back(i * tp + j);
    }
    return groups;
}

std::vector<std::vector<int>>
sp_groups(int sp, int tp)
{
    SP_ASSERT(sp >= 1 && tp >= 1);
    std::vector<std::vector<int>> groups(tp);
    for (int j = 0; j < tp; ++j) {
        groups[j].reserve(sp);
        for (int i = 0; i < sp; ++i)
            groups[j].push_back(i * tp + j);
    }
    return groups;
}

std::vector<int>
sp_tp_group(int sp, int tp)
{
    SP_ASSERT(sp >= 1 && tp >= 1);
    std::vector<int> order;
    order.reserve(static_cast<std::size_t>(sp) * tp);
    // SP-major within each TP column: for TP column j list all SP rows i.
    for (int j = 0; j < tp; ++j)
        for (int i = 0; i < sp; ++i)
            order.push_back(i * tp + j);
    return order;
}

} // namespace shiftpar::hw
