#include "hw/kernel_coeffs.h"

#include <fstream>
#include <sstream>

#include "hw/presets.h"
#include "util/json_parse.h"
#include "util/logging.h"

namespace shiftpar::hw {

KernelCoeffs
derive_kernel_coeffs(const GpuSpec& gpu, const LinkSpec& link)
{
    SP_ASSERT(gpu.hbm_bw > 0.0 && link.bw > 0.0,
              "kernel coefficients need usable device and link bandwidth");
    KernelCoeffs c;
    c.hardware = gpu.name;
    // FP8 GEMMs dominate serving; attention runs at the FP16 rate on the
    // (typically FP16) KV cache. Norms are bandwidth-bound: no FLOP term.
    c.gemm.alpha = gpu.kernel_overhead;
    c.gemm.beta = 1.0 / gpu.effective_gemm_flops(1.0);
    c.gemm.gamma = 1.0 / gpu.effective_bw();
    c.attention.alpha = gpu.kernel_overhead;
    c.attention.beta = 1.0 / gpu.effective_attn_flops(2.0);
    c.attention.gamma = 1.0 / gpu.effective_bw();
    c.norm.alpha = gpu.kernel_overhead;
    c.norm.beta = 0.0;
    c.norm.gamma = 1.0 / gpu.effective_bw();
    c.collective.alpha = link.latency;
    c.collective.beta = 0.0;
    c.collective.gamma = 1.0 / link.effective_bw();
    return c;
}

KernelCoeffs
kernel_coeffs_preset(const std::string& name)
{
    if (name == "h200")
        return derive_kernel_coeffs(h200(), nvswitch());
    if (name == "h100")
        return derive_kernel_coeffs(h100(), nvswitch());
    if (name == "b200")
        return derive_kernel_coeffs(b200(), nvswitch());
    if (name == "a100")
        return derive_kernel_coeffs(a100(), nvswitch());
    fatal("unknown kernel-coefficient preset '" + name +
          "' (expected h200|h100|b200|a100)");
}

KernelCoeffs
load_calibrated_coeffs(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open calibration report '" + path + "'");
    std::stringstream buf;
    buf << in.rdbuf();

    util::JsonValue doc;
    try {
        doc = util::parse_json(buf.str());
    } catch (const std::exception& e) {
        fatal("calibration report '" + path + "' is not valid JSON: " +
              e.what());
    }
    if (!doc.is_object() || !doc.has("schema") ||
        doc.at("schema").str() != "shiftpar.calibration" ||
        doc.at("version").num() != 1.0) {
        fatal("calibration report '" + path +
              "' is not a shiftpar.calibration v1 document");
    }

    KernelCoeffs c;
    c.hardware = doc.has("hardware") ? doc.at("hardware").str() : "";
    bool seen_gemm = false, seen_attn = false, seen_norm = false,
         seen_coll = false;
    for (const util::JsonValue& fit : doc.at("kernels").arr()) {
        KernelCoeff k;
        k.alpha = fit.at("alpha").num();
        k.beta = fit.at("beta").num();
        k.gamma = fit.at("gamma").num();
        const std::string& klass = fit.at("class").str();
        if (klass == "gemm") {
            c.gemm = k;
            seen_gemm = true;
        } else if (klass == "attention") {
            c.attention = k;
            seen_attn = true;
        } else if (klass == "norm") {
            c.norm = k;
            seen_norm = true;
        } else if (klass == "collective") {
            c.collective = k;
            seen_coll = true;
        }
        // Unknown classes are ignored: additive schema evolution.
    }
    if (!(seen_gemm && seen_attn && seen_norm && seen_coll)) {
        fatal("calibration report '" + path +
              "' is missing kernel classes (need gemm, attention, norm, "
              "collective)");
    }
    return c;
}

} // namespace shiftpar::hw
