#include "engine/metrics.h"

#include <algorithm>

#include "util/logging.h"

namespace shiftpar::engine {

Metrics::Metrics(double throughput_bin)
    : throughput_(throughput_bin)
{
}

void
Metrics::on_request_finished(const Request& r)
{
    SP_ASSERT(r.done() && r.finished >= 0.0);
    RequestRecord rec;
    rec.id = r.id;
    rec.arrival = r.spec.arrival;
    rec.prompt_tokens = r.spec.prompt_tokens;
    rec.output_tokens = r.spec.output_tokens;
    rec.ttft = r.ttft();
    rec.tpot = r.tpot();
    rec.completion = r.completion();
    rec.wait = r.first_scheduled - r.spec.arrival;
    rec.preemptions = r.preemptions;
    add_record(rec);
}

void
Metrics::add_record(const RequestRecord& rec)
{
    requests_.push_back(rec);
    ttft_.add(rec.ttft);
    if (rec.output_tokens > 1)
        tpot_.add(rec.tpot);
    completion_.add(rec.completion);
    wait_.add(rec.wait);
}

void
Metrics::on_step(const StepRecord& step)
{
    SP_ASSERT(step.end >= step.start && step.start >= 0.0,
              "malformed step record");
    steps_.push_back(step);
    throughput_.add(step.end, static_cast<double>(step.batched_tokens));
    component_totals_ += step.timing;
    total_tokens_ += step.batched_tokens;
    if (step.cfg.sp > 1)
        ++sp_steps_;
    else
        ++tp_steps_;
    end_time_ = std::max(end_time_, step.end);
}

void
Metrics::merge(const Metrics& other)
{
    SP_ASSERT(&other != this, "cannot merge a Metrics into itself");
    // Delegate to the single-sample paths so merged aggregates are
    // bit-identical to direct accumulation (merging an empty Metrics is a
    // no-op; merging into an empty Metrics reproduces `other` exactly up
    // to throughput rebinning when bin widths differ).
    for (const auto& rec : other.requests_)
        add_record(rec);
    for (const auto& step : other.steps_)
        on_step(step);
}

double
Metrics::mean_throughput() const
{
    return end_time_ > 0.0
               ? static_cast<double>(total_tokens_) / end_time_
               : 0.0;
}

double
Metrics::slo_attainment(const SloSpec& slo) const
{
    if (requests_.empty())
        return 0.0;
    std::size_t ok = 0;
    for (const auto& r : requests_) {
        const bool tpot_ok = r.output_tokens <= 1 || r.tpot <= slo.tpot;
        ok += r.ttft <= slo.ttft && tpot_ok;
    }
    return static_cast<double>(ok) / static_cast<double>(requests_.size());
}

double
Metrics::goodput(const SloSpec& slo) const
{
    if (end_time_ <= 0.0)
        return 0.0;
    double tokens = 0.0;
    for (const auto& r : requests_) {
        const bool tpot_ok = r.output_tokens <= 1 || r.tpot <= slo.tpot;
        if (r.ttft <= slo.ttft && tpot_ok)
            tokens += static_cast<double>(r.prompt_tokens +
                                          r.output_tokens);
    }
    return tokens / end_time_;
}

} // namespace shiftpar::engine
