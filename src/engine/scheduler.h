/**
 * @file
 * Continuous-batching scheduler with chunked prefill.
 *
 * Mirrors the vLLM v1 scheduling policy the paper's system plugs into:
 * every iteration assembles a batch of (a) one decode token per running
 * sequence and (b) prefill chunks from admitted/waiting requests, subject to
 * a batched-token budget (`max_batched_tokens`). KV blocks are acquired at
 * scheduling time; decode steps that cannot get a block trigger recompute
 * preemption of the most recently admitted sequence (vLLM's policy). The
 * per-iteration batched-token count produced here is exactly the input of
 * the Shift Parallelism decision (Algorithm 2).
 */

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "engine/metrics.h"
#include "engine/request.h"
#include "kvcache/cache_manager.h"
#include "obs/trace.h"
#include "parallel/perf_model.h"

namespace shiftpar::engine {

/** Scheduler tuning (vLLM-equivalent knobs). */
struct SchedulerOptions
{
    /** Token budget per iteration (vLLM max_num_batched_tokens). */
    std::int64_t max_batched_tokens = 8192;

    /** Maximum concurrently admitted sequences (vLLM max_num_seqs). */
    std::int64_t max_running_seqs = 1024;

    /**
     * Output tokens emitted per decode step (speculative decoding's
     * expected accepted length; 1 = standard autoregressive decoding).
     */
    std::int64_t decode_tokens_per_step = 1;

    /**
     * Automatic prefix caching (vLLM APC equivalent): serve shared prompt
     * prefixes (RequestSpec::prefix_id) from the KV cache.
     */
    bool enable_prefix_caching = true;
};

/** One request's share of an iteration. */
struct ScheduledChunk
{
    Request* request = nullptr;

    /** New tokens processed this step (>= 1). */
    std::int64_t new_tokens = 0;

    /** Cached context before this chunk. */
    std::int64_t past = 0;

    /** True when this chunk is prefill work (false: one decode token). */
    bool is_prefill = false;
};

/** The batch an iteration will execute. */
struct BatchPlan
{
    std::vector<ScheduledChunk> chunks;

    /** @return sum of new tokens — the Alg. 2 "batch size". */
    std::int64_t batched_tokens() const;

    /** @return true when nothing was schedulable. */
    bool empty() const { return chunks.empty(); }

    /** @return the perf-model view of this batch. */
    parallel::BatchWork work() const;
};

/** FCFS continuous-batching scheduler bound to one engine's KV cache. */
class Scheduler
{
  public:
    Scheduler(SchedulerOptions opts, kvcache::CacheManager* cache);

    /** Attach an observability sink (borrowed; null disables tracing). */
    void set_trace(obs::TraceSink* sink, obs::EngineId id)
    {
        trace_ = sink;
        trace_id_ = id;
    }

    /** Add a request to the waiting queue (FCFS by submission order). */
    void enqueue(Request* r);

    /**
     * Assemble the next iteration's batch, acquiring KV blocks as needed.
     *
     * @param now Current engine time (stamps first_scheduled).
     * @return the plan; empty when no request can make progress (all
     * waiting requests blocked on KV with nothing running to preempt).
     */
    BatchPlan schedule(double now);

    /**
     * Cancel a request (client abort): removes it from whichever queue it
     * occupies and releases its cache state.
     *
     * @return true when the request was live and is now cancelled.
     */
    bool cancel(Request* r);

    /**
     * Remove the youngest zero-progress waiting request (arrived by
     * `now`, never scheduled, holding no KV or prefix state) whose total
     * context is at most `max_tokens`, for cross-replica migration.
     * Stealing from the back of the queue disturbs FCFS the least: the
     * victim re-enters another replica's queue as if freshly routed
     * there. The size cap lets the router refuse moves that would flip
     * the imbalance rather than shrink it.
     *
     * @return the removed request (state set to kMigrated), or null.
     */
    Request* steal_waiting(double now, std::int64_t max_tokens);

    /**
     * Evict every live request whose completion deadline has passed
     * (deadline > 0 and deadline <= now): running requests (admission
     * order) then waiting ones (queue order) are removed from their
     * queues, their KV and prefix pins released, and their state set to
     * kExpired. No-op — and zero cost — unless a deadline-carrying
     * request was ever enqueued, so deadline-free runs stay
     * bit-identical.
     *
     * @return the evicted requests, running first then waiting.
     */
    std::vector<Request*> expire_due(double now);

    /**
     * @return the earliest completion deadline among live requests, or
     * +inf when none carries one (used by the engine to wake up and
     * expire work even when nothing is schedulable).
     */
    double earliest_deadline() const;

    /**
     * Graceful drain: remove every waiting request (queue order),
     * releasing any cache/prefix state acquired at the admission gate,
     * and mark them kMigrated so the router can re-admit them elsewhere.
     * Running requests are untouched — they finish here.
     *
     * @return the removed requests in queue order.
     */
    std::vector<Request*> drain_waiting();

    /**
     * Fail-stop: drop every live request (fault injection). Running
     * requests (admission order) then waiting requests (queue order) are
     * removed from their queues, their KV and prefix pins released, and
     * their state set to kLost. The returned order is deterministic so a
     * router can retry them reproducibly.
     *
     * @return the dropped requests, running first then waiting.
     */
    std::vector<Request*> fail_all();

    /**
     * Apply the effects of a completed step: advance prefill progress,
     * emit tokens, finish requests (releasing their KV).
     *
     * @param now Step end time.
     * @param plan The plan returned by `schedule`.
     * @param[out] finished Requests that completed this step.
     */
    void on_step_complete(double now, const BatchPlan& plan,
                          std::vector<Request*>* finished);

    /** @return true while any request is waiting or running. */
    bool has_work() const
    {
        return !waiting_.empty() || !running_.empty();
    }

    /** @return queued (not yet admitted) request count. */
    std::size_t num_waiting() const { return waiting_.size(); }

    /** @return admitted (KV-holding) request count. */
    std::size_t num_running() const { return running_.size(); }

    /** @return total unprocessed tokens across queued+running requests. */
    std::int64_t outstanding_tokens() const;

    /**
     * @return the earliest arrival time among waiting requests, or +inf
     * when none are waiting (used by the engine to skip idle time).
     */
    double earliest_waiting_arrival() const;

    /** @return total preemptions performed. */
    std::int64_t preemption_count() const { return preemptions_; }

  private:
    /**
     * Free KV by recompute-preempting the most recently admitted running
     * request other than `keep`, retracting the victim's chunk from `plan`
     * if it had already been scheduled this step.
     *
     * @return the retracted token count (0 when the victim had no chunk in
     * `plan`) so the caller can refund its step budget, or -1 when no
     * victim could be preempted.
     */
    std::int64_t preempt_one(const Request* keep, BatchPlan* plan);

    /**
     * Schedule one prefill chunk for `r` within `budget`, splitting the
     * chunk between the shared prefix entry (when `r` is its filler) and
     * the request's private blocks.
     *
     * @return tokens scheduled (0 when blocked).
     */
    std::int64_t schedule_prefill(Request* r, std::int64_t budget,
                                  BatchPlan* plan);

    /** Pin `r` to its shared prefix entry and apply the cache hit. */
    void attach_prefix_if_needed(Request* r);

    /** Unpin `r` from its prefix entry (finish or preemption). */
    void detach_prefix_if_attached(Request* r);

    /** Insert into the waiting queue by priority class. */
    void insert_waiting(Request* r, bool front_of_class);

    /** Publish a lifecycle event when a sink is attached. */
    void publish(const Request* r, obs::RequestPhase phase, double t,
                 std::int64_t tokens = 0) const;

    SchedulerOptions opts_;
    kvcache::CacheManager* cache_;
    std::deque<Request*> waiting_;
    std::vector<Request*> running_;  // admission order
    std::int64_t preemptions_ = 0;
    /** A deadline-carrying request was enqueued (gates expiry sweeps). */
    bool has_deadlines_ = false;
    obs::TraceSink* trace_ = nullptr;
    obs::EngineId trace_id_ = 0;
    double sched_now_ = 0.0;  ///< time of the in-progress schedule() call
};

} // namespace shiftpar::engine
