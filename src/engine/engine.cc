#include "engine/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics_registry.h"
#include "util/logging.h"

namespace shiftpar::engine {

Engine::Engine(const hw::Node& node, const model::ModelConfig& m,
               EngineConfig cfg, std::unique_ptr<ExecutionPolicy> policy)
    : model_(m), cfg_(cfg),
      cost_model_(parallel::make_cost_model(cfg.cost, node, m, cfg.perf)),
      mem_plan_(parallel::plan_memory(m, node.gpu, cfg.base,
                                      cfg.with_shift_model, cfg.weights,
                                      cfg.mem)),
      cache_(mem_plan_.kv_token_capacity,
             kvcache::KvLayout::base(m, cfg.base), cfg.block_size),
      shift_layout_(kvcache::KvLayout::shift(m, cfg.base)),
      scheduler_(cfg.sched, &cache_), policy_(std::move(policy)),
      metrics_(cfg.throughput_bin)
{
    SP_ASSERT(policy_ != nullptr);
    if (!mem_plan_.fits()) {
        fatal("model '" + m.name + "' does not fit under " +
              cfg.base.to_string() + ": " + parallel::describe(mem_plan_));
    }
    // Section 3.3.1: the SP_TP-ordered shift configuration must be KV-cache
    // invariant with the base configuration by construction.
    cache_.assert_invariant_with(shift_layout_);
    if (cfg_.trace) {
        scheduler_.set_trace(cfg_.trace, cfg_.trace_id);
        cache_.set_trace(cfg_.trace, cfg_.trace_id, &now_);
        policy_->attach_trace(cfg_.trace, cfg_.trace_id, &now_);
    }
}

void
Engine::submit(const RequestSpec& spec, RequestId id, bool migrated_in)
{
    SP_ASSERT(!failed_, "submit to a failed engine");
    SP_ASSERT(!draining_, "submit to a draining engine");
    SP_ASSERT(spec.prompt_tokens >= 1 && spec.output_tokens >= 1,
              "requests need at least one prompt and one output token");
    SP_ASSERT(spec.prefix_tokens >= 0 &&
                  spec.prefix_tokens <= spec.prompt_tokens,
              "prefix must be a leading slice of the prompt");
    if (spec.prompt_tokens + spec.output_tokens > model_.max_context) {
        fatal("request exceeds " + model_.name + "'s context window: " +
              std::to_string(spec.prompt_tokens + spec.output_tokens) +
              " > " + std::to_string(model_.max_context) + " tokens");
    }
    auto req = std::make_unique<Request>();
    req->id = id;
    req->spec = spec;
    req->prefill_target = spec.prompt_tokens;
    req->migrated_in = migrated_in;
    scheduler_.enqueue(req.get());
    requests_.push_back(std::move(req));
    if (cfg_.trace) {
        cfg_.trace->publish_request({cfg_.trace_id, id,
                                obs::RequestPhase::kSubmit, spec.arrival,
                                spec.prompt_tokens});
    }
    notify_ready_changed();
}

void
Engine::submit_prefilled(const RequestSpec& spec, RequestId id,
                         std::int64_t already_decoded)
{
    SP_ASSERT(spec.prompt_tokens >= 1 && spec.output_tokens >= 1);
    SP_ASSERT(already_decoded >= 1 && already_decoded < spec.output_tokens,
              "a prefilled request needs at least one token left to decode");
    auto req = std::make_unique<Request>();
    req->id = id;
    req->spec = spec;
    req->prefill_target = spec.prompt_tokens;
    req->prefilled = spec.prompt_tokens;  // KV materialized on admission
    req->decoded = already_decoded;
    req->first_token = spec.arrival;  // produced by the prefill worker
    scheduler_.enqueue(req.get());
    requests_.push_back(std::move(req));
    if (cfg_.trace) {
        cfg_.trace->publish_request({cfg_.trace_id, id,
                                obs::RequestPhase::kSubmit, spec.arrival,
                                spec.prompt_tokens});
    }
    notify_ready_changed();
}

bool
Engine::cancel(RequestId id)
{
    for (auto& req : requests_) {
        if (req->id != id)
            continue;
        // Keep scanning past dead copies: a request dropped here (lost,
        // migrated out) and later re-routed back leaves its old object
        // in requests_ ahead of the live one.
        if (!scheduler_.cancel(req.get()))
            continue;
        ++cancelled_;
        if (cfg_.trace) {
            cfg_.trace->publish_request(
                {cfg_.trace_id, id, obs::RequestPhase::kCancel, now_, 0});
        }
        notify_ready_changed();  // may have been the engine's last work
        return true;
    }
    return false;
}

bool
Engine::queued_unscheduled(RequestId id) const
{
    for (const auto& req : requests_) {
        // Scan every copy: a dead one (lost, migrated out) may precede a
        // live re-routed one with the same id.
        if (req->id == id && req->state == RequestState::kWaiting &&
            req->first_scheduled < 0.0)
            return true;
    }
    return false;
}

std::vector<std::pair<RequestSpec, RequestId>>
Engine::start_drain(double t)
{
    SP_ASSERT(!failed_, "start_drain on a failed engine");
    SP_ASSERT(!draining_, "start_drain on an already-draining engine");
    draining_ = true;
    now_ = std::max(now_, t);
    std::vector<Request*> handed = scheduler_.drain_waiting();
    std::vector<std::pair<RequestSpec, RequestId>> out;
    out.reserve(handed.size());
    for (const Request* r : handed)
        out.emplace_back(r->spec, r->id);
    if (cfg_.trace) {
        obs::FaultEvent ev;
        ev.engine = cfg_.trace_id;
        ev.kind = obs::FaultKind::kDrainStart;
        ev.t = now_;
        ev.dropped_requests = static_cast<std::int64_t>(out.size());
        cfg_.trace->on_fault(ev);
    }
    notify_ready_changed();  // the hand-back may have emptied the queue
    return out;
}

void
Engine::resume_admission(double t)
{
    SP_ASSERT(draining_, "resume_admission on a non-draining engine");
    draining_ = false;
    now_ = std::max(now_, t);
    if (cfg_.trace) {
        obs::FaultEvent ev;
        ev.engine = cfg_.trace_id;
        ev.kind = obs::FaultKind::kDrainEnd;
        ev.t = now_;
        cfg_.trace->on_fault(ev);
    }
    notify_ready_changed();
}

std::vector<std::pair<RequestSpec, RequestId>>
Engine::fail(double t)
{
    SP_ASSERT(!failed_, "engine failed twice without recovering");
    failed_ = true;
    draining_ = false;  // fail-stop trumps a drain in progress
    now_ = std::max(now_, t);
    slowdown_ = 1.0;
    comm_multiplier_ = 1.0;

    std::vector<Request*> dropped = scheduler_.fail_all();
    std::vector<std::pair<RequestSpec, RequestId>> out;
    out.reserve(dropped.size());
    for (const Request* r : dropped)
        out.emplace_back(r->spec, r->id);

    // HBM dies with the rank group: idle prefix entries (live ones were
    // just unpinned by the drop) are destroyed too, so a recovered engine
    // restarts cold.
    cache_.evict_idle_prefixes(std::numeric_limits<std::int64_t>::max());
    SP_ASSERT(cache_.num_requests() == 0 && cache_.prefix_entry_count() == 0,
              "failed engine still holds KV state");

    if (cfg_.trace) {
        obs::FaultEvent ev;
        ev.engine = cfg_.trace_id;
        ev.kind = obs::FaultKind::kFail;
        ev.t = now_;
        ev.dropped_requests = static_cast<std::int64_t>(out.size());
        cfg_.trace->on_fault(ev);
    }
    notify_ready_changed();  // failed: no events until recover()
    return out;
}

void
Engine::recover(double t)
{
    SP_ASSERT(failed_, "recover() on a healthy engine");
    failed_ = false;
    now_ = std::max(now_, t);
    if (cfg_.trace) {
        obs::FaultEvent ev;
        ev.engine = cfg_.trace_id;
        ev.kind = obs::FaultKind::kRecover;
        ev.t = now_;
        cfg_.trace->on_fault(ev);
    }
    notify_ready_changed();
}

void
Engine::set_slowdown(double factor, double t)
{
    SP_ASSERT(factor >= 1.0);
    slowdown_ = factor;
    if (cfg_.trace) {
        obs::FaultEvent ev;
        ev.engine = cfg_.trace_id;
        ev.kind = factor > 1.0 ? obs::FaultKind::kStraggleStart
                               : obs::FaultKind::kStraggleEnd;
        ev.t = t;
        ev.magnitude = factor;
        cfg_.trace->on_fault(ev);
    }
}

void
Engine::set_comm_multiplier(double factor, double t)
{
    SP_ASSERT(factor >= 1.0);
    comm_multiplier_ = factor;
    if (cfg_.trace) {
        obs::FaultEvent ev;
        ev.engine = cfg_.trace_id;
        ev.kind = factor > 1.0 ? obs::FaultKind::kLinkDegrade
                               : obs::FaultKind::kLinkRestore;
        ev.t = t;
        ev.magnitude = factor;
        cfg_.trace->on_fault(ev);
    }
}

void
Engine::record_cost_metrics(
    const parallel::StepTiming& timing,
    const std::vector<parallel::KernelCost>& breakdown) const
{
    obs::MetricsRegistry& reg = obs::MetricsRegistry::current();
    reg.counter_add("shiftpar_costmodel_evals_total", 1,
                    {{"model", cost_model_->name()}});
    const double total = timing.total();
    if (total <= 0.0)
        return;
    for (const parallel::KernelCost& k : breakdown) {
        reg.observe("shiftpar_costmodel_kernel_share", k.seconds / total,
                    {{"kernel", k.kernel}});
    }
}

bool
Engine::expire_now()
{
    const std::vector<Request*> expired = scheduler_.expire_due(now_);
    if (expired.empty())
        return false;
    expired_ += static_cast<std::int64_t>(expired.size());
    for (const Request* r : expired) {
        if (on_expire_)
            on_expire_(r->id, now_);
    }
    // No notify_ready_changed() here: expire_now runs inside advance_to,
    // i.e. mid-grant, where re-posting the ready time stales the cluster
    // entry the loop is currently granting. Every expiry path returns
    // true, and the cluster loop republishes via refresh_ready after any
    // true grant — so the ready time is re-announced either way.
    return true;
}

bool
Engine::step()
{
    // Deadline expiry precedes scheduling so a past-deadline request
    // never takes another token of compute; eviction alone is progress.
    const bool expired = expire_now();
    BatchPlan plan = scheduler_.schedule(now_);
    if (plan.empty())
        return expired;

    const std::int64_t batched = plan.batched_tokens();
    const ExecutionPolicy::Choice choice = policy_->choose(batched);

    // Every mode switch must be KV-layout safe. The base configuration owns
    // the cache layout; the only other legal configuration is the
    // SP_TP-ordered shift config.
    if (!(choice.cfg == cfg_.base)) {
        SP_ASSERT(choice.cfg == cfg_.base.shift_config(),
                  "policy chose a configuration outside {base, shift}");
        cache_.assert_invariant_with(shift_layout_);
    }

    std::vector<parallel::KernelCost> breakdown;
    parallel::StepTiming timing = cost_model_->evaluate(
        plan.work(), choice.cfg, choice.sliced,
        cfg_.cost_metrics ? &breakdown : nullptr);
    if (cfg_.cost_metrics)
        record_cost_metrics(timing, breakdown);
    // Fault-injection multipliers. Guarded so an unfaulted run's timings
    // are the exact same doubles — results stay bit-identical with the
    // fault subsystem unused.
    if (comm_multiplier_ != 1.0)
        timing.comm *= comm_multiplier_;
    if (slowdown_ != 1.0) {
        timing.gemm *= slowdown_;
        timing.attention *= slowdown_;
        timing.comm *= slowdown_;
        timing.overhead *= slowdown_;
    }

    StepRecord rec;
    rec.start = now_;
    now_ += timing.total();
    rec.end = now_;
    rec.batched_tokens = batched;
    rec.num_seqs = static_cast<std::int64_t>(plan.chunks.size());
    rec.cfg = choice.cfg;
    rec.timing = timing;
    metrics_.on_step(rec);

    if (cfg_.trace) {
        obs::StepEvent ev;
        ev.engine = cfg_.trace_id;
        ev.start = rec.start;
        ev.end = rec.end;
        ev.batched_tokens = batched;
        ev.num_seqs = rec.num_seqs;
        ev.cfg = choice.cfg;
        ev.shifted = !(choice.cfg == cfg_.base);
        ev.sliced = choice.sliced;
        ev.timing = timing;
        cfg_.trace->on_step(ev);
    }

    std::vector<Request*> finished;
    scheduler_.on_step_complete(now_, plan, &finished);
    for (const Request* r : finished) {
        if (on_finish_ && !on_finish_(*r))
            continue;  // duplicate copy of an already-settled request
        metrics_.on_request_finished(*r);
    }

    if (cfg_.trace) {
        obs::GaugeEvent g;
        g.engine = cfg_.trace_id;
        g.t = now_;
        g.kv_utilization = cache_.utilization();
        g.kv_free_tokens = cache_.free_tokens();
        g.waiting = static_cast<std::int64_t>(scheduler_.num_waiting());
        g.running = static_cast<std::int64_t>(scheduler_.num_running());
        g.outstanding_tokens = scheduler_.outstanding_tokens();
        cfg_.trace->on_gauge(g);
    }
    return true;
}

double
Engine::next_event_time() const
{
    if (failed_ || !has_work())
        return std::numeric_limits<double>::infinity();
    if (scheduler_.num_running() > 0)
        return now_;
    // A pending deadline wakes an otherwise-idle engine so expiry fires
    // at the right instant (earliest_deadline() is +inf without one).
    const double next = std::min(scheduler_.earliest_waiting_arrival(),
                                 scheduler_.earliest_deadline());
    return next <= now_ ? now_ : next;
}

bool
Engine::advance_to(double t)
{
    if (failed_ || !has_work())
        return false;
    if (scheduler_.num_running() == 0) {
        const double next = scheduler_.earliest_waiting_arrival();
        if (next > now_) {
            const double wake =
                std::min(next, scheduler_.earliest_deadline());
            if (wake > t || !std::isfinite(wake))
                return false;
            now_ = wake;  // skip idle time to the arrival or deadline
            if (wake < next)
                expire_now();
            return true;
        }
    }
    if (step())
        return true;
    // Nothing schedulable (KV-blocked), but a queued deadline may still
    // pass inside the window: jump to it and expire, which is progress.
    const double d = scheduler_.earliest_deadline();
    if (d > now_ && d <= t && std::isfinite(d)) {
        now_ = d;
        return expire_now();
    }
    return false;
}

std::optional<std::pair<RequestSpec, RequestId>>
Engine::steal_waiting(std::int64_t max_tokens)
{
    Request* r = scheduler_.steal_waiting(now_, max_tokens);
    if (r == nullptr)
        return std::nullopt;
    // The Request object stays in requests_ (it owns the storage) but is
    // out of every queue and will never finish here, so it produces no
    // record on this engine.
    notify_ready_changed();  // may have been the engine's last work
    return std::make_pair(r->spec, r->id);
}

void
Engine::run_until(double t)
{
    while (now_ < t && has_work()) {
        if (step())
            continue;
        // Nothing schedulable right now: either every waiting request is
        // in the future (skip idle time) or the cache is stuck (yield).
        // A pending deadline also ends the idle skip so expiry fires on
        // time (earliest_deadline() is +inf without one).
        const double next = std::min(scheduler_.earliest_waiting_arrival(),
                                     scheduler_.earliest_deadline());
        if (next > now_ && next <= t) {
            now_ = next;
            continue;
        }
        break;
    }
    now_ = std::max(now_, t);
}

void
Engine::drain()
{
    while (has_work()) {
        if (step())
            continue;
        const double next = std::min(scheduler_.earliest_waiting_arrival(),
                                     scheduler_.earliest_deadline());
        if (next > now_ && std::isfinite(next)) {
            now_ = next;  // idle until the next arrival or deadline
            continue;
        }
        fatal("engine deadlocked with " +
              std::to_string(scheduler_.num_waiting()) +
              " waiting requests: KV cache cannot admit the head request");
    }
}

} // namespace shiftpar::engine
