#include "engine/scheduler.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace shiftpar::engine {

std::int64_t
BatchPlan::batched_tokens() const
{
    std::int64_t total = 0;
    for (const auto& c : chunks)
        total += c.new_tokens;
    return total;
}

parallel::BatchWork
BatchPlan::work() const
{
    parallel::BatchWork w;
    w.chunks.reserve(chunks.size());
    for (const auto& c : chunks)
        w.chunks.push_back({c.new_tokens, c.past, c.is_prefill});
    return w;
}

Scheduler::Scheduler(SchedulerOptions opts, kvcache::CacheManager* cache)
    : opts_(opts), cache_(cache)
{
    SP_ASSERT(cache != nullptr);
    SP_ASSERT(opts_.max_batched_tokens >= 1 && opts_.max_running_seqs >= 1);
}

void
Scheduler::publish(const Request* r, obs::RequestPhase phase, double t,
                   std::int64_t tokens) const
{
    if (trace_)
        trace_->publish_request({trace_id_, r->id, phase, t, tokens});
}

void
Scheduler::enqueue(Request* r)
{
    SP_ASSERT(r != nullptr && r->state == RequestState::kWaiting);
    if (r->spec.deadline > 0.0)
        has_deadlines_ = true;
    insert_waiting(r, /*front_of_class=*/false);
}

void
Scheduler::insert_waiting(Request* r, bool front_of_class)
{
    // Priority classes, FCFS within a class. New arrivals go behind their
    // class; preempted requests return to the front of theirs (they have
    // the oldest in-flight work).
    const auto pos = std::find_if(
        waiting_.begin(), waiting_.end(), [&](const Request* w) {
            return front_of_class
                       ? w->spec.priority <= r->spec.priority
                       : w->spec.priority < r->spec.priority;
        });
    waiting_.insert(pos, r);
}

std::int64_t
Scheduler::preempt_one(const Request* keep, BatchPlan* plan)
{
    // vLLM preempts the most recently admitted sequence first so the oldest
    // requests keep their progress (FCFS fairness under memory pressure).
    // Prefer victims that are not already part of this step's plan; when
    // none exists, evict a planned one, retract its chunk, and report the
    // retracted tokens so the caller can refund its budget.
    auto in_plan = [&](const Request* r) {
        return std::any_of(plan->chunks.begin(), plan->chunks.end(),
                           [&](const ScheduledChunk& c) {
                               return c.request == r;
                           });
    };
    for (int pass = 0; pass < 2; ++pass) {
        for (auto it = running_.rbegin(); it != running_.rend(); ++it) {
            Request* victim = *it;
            if (victim == keep)
                continue;
            if (pass == 0 && in_plan(victim))
                continue;
            std::int64_t retracted = 0;
            if (in_plan(victim)) {
                std::erase_if(plan->chunks, [&](const ScheduledChunk& c) {
                    if (c.request != victim)
                        return false;
                    retracted += c.new_tokens;
                    return true;
                });
            }
            cache_->release(victim->id);
            detach_prefix_if_attached(victim);
            victim->reset_for_recompute();
            running_.erase(std::next(it).base());
            insert_waiting(victim, /*front_of_class=*/true);
            ++preemptions_;
            publish(victim, obs::RequestPhase::kPreempt, sched_now_);
            return retracted;
        }
    }
    return -1;
}

BatchPlan
Scheduler::schedule(double now)
{
    BatchPlan plan;
    std::int64_t budget = opts_.max_batched_tokens;
    sched_now_ = now;  // stamps preemption/lifecycle events this call

    // ---- Migrated-request admission ---------------------------------------
    // Requests arriving already prefilled (disaggregated decode workers)
    // materialize their transferred KV without compute; doing this before
    // the decode pass lets them decode in this very step.
    bool migrated_blocked = false;
    for (auto it = waiting_.begin();
         it != waiting_.end() && static_cast<std::int64_t>(
                                     running_.size()) <
                                     opts_.max_running_seqs;) {
        Request* r = *it;
        if (r->spec.arrival > now || !r->prefill_done()) {
            ++it;
            continue;
        }
        if (migrated_blocked || !cache_->try_append(r->id, r->prefilled)) {
            // Keep intra-class FCFS (same rule as the prefill pass): later
            // migrated requests must not jump a cache-blocked one, but the
            // scan continues so non-migrated requests keep their slots.
            migrated_blocked = true;
            ++it;
            continue;
        }
        it = waiting_.erase(it);
        r->state = RequestState::kDecode;
        if (r->first_scheduled < 0.0) {
            r->first_scheduled = now;
            publish(r, obs::RequestPhase::kFirstSchedule, now);
        } else {
            publish(r, obs::RequestPhase::kResume, now);
        }
        running_.push_back(r);
    }

    // ---- Decode pass: one token per running sequence ---------------------
    // Iterate over a snapshot index range because preemption mutates
    // running_ behind the cursor.
    for (std::size_t i = 0; i < running_.size() && budget > 0;) {
        Request* r = running_[i];
        if (r->state != RequestState::kDecode) {
            ++i;
            continue;
        }
        const std::int64_t past =
            r->prefix_filled + cache_->cached_tokens(r->id);
        // Cap the chunk at the remaining budget: with multi-token decode
        // steps (speculative decoding) an uncapped chunk could push
        // batched_tokens() past max_batched_tokens, distorting the
        // ShiftController's Alg. 2 decision near the threshold.
        const std::int64_t tokens =
            std::min({opts_.decode_tokens_per_step,
                      r->spec.output_tokens - r->decoded, budget});
        SP_ASSERT(tokens >= 1);
        while (!cache_->try_append(r->id, tokens)) {
            const std::int64_t retracted = preempt_one(r, &plan);
            if (retracted < 0) {
                fatal("KV cache cannot hold a single decoding request; "
                      "increase memory or reduce context");
            }
            // A planned victim's chunk was retracted: refund its tokens so
            // the freed budget stays spendable this step.
            budget += retracted;
            // Preemption may have removed requests before the cursor.
            const auto pos =
                std::find(running_.begin(), running_.end(), r);
            i = static_cast<std::size_t>(pos - running_.begin());
        }
        plan.chunks.push_back({r, tokens, past, false});
        budget -= tokens;
        ++i;
    }

    // ---- Prefill pass ------------------------------------------------------
    // Continuing prefills and arrived waiting requests compete for the
    // chunked-prefill budget in one priority-ordered pass: a freshly
    // arrived latency-class request takes budget ahead of an in-flight
    // batch-class prefill. Within a class, continuing work precedes new
    // admissions and ties keep FCFS order (stable sort).
    struct PrefillCandidate
    {
        Request* request;
        bool is_waiting;
    };
    std::vector<PrefillCandidate> candidates;
    for (Request* r : running_) {
        if (r->state == RequestState::kPrefill && !r->prefill_done())
            candidates.push_back({r, false});
    }
    for (Request* r : waiting_) {
        if (r->spec.arrival <= now && !r->prefill_done())
            candidates.push_back({r, true});
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const PrefillCandidate& a,
                        const PrefillCandidate& b) {
                         return a.request->spec.priority >
                                b.request->spec.priority;
                     });

    bool admission_blocked = false;
    for (const auto& cand : candidates) {
        if (budget <= 0)
            break;
        Request* r = cand.request;
        if (!cand.is_waiting) {
            budget -= schedule_prefill(r, budget, &plan);
            continue;
        }
        if (admission_blocked ||
            static_cast<std::int64_t>(running_.size()) >=
                opts_.max_running_seqs) {
            continue;
        }
        attach_prefix_if_needed(r);
        const std::int64_t scheduled = schedule_prefill(r, budget, &plan);
        if (scheduled == 0) {
            // Keep intra-class FCFS: later (same or lower class) waiting
            // requests must not jump a blocked one.
            admission_blocked = true;
            continue;
        }
        waiting_.erase(std::find(waiting_.begin(), waiting_.end(), r));
        r->state = RequestState::kPrefill;
        if (r->first_scheduled < 0.0) {
            r->first_scheduled = now;
            publish(r, obs::RequestPhase::kFirstSchedule, now);
        } else {
            publish(r, obs::RequestPhase::kResume, now);
        }
        running_.push_back(r);
        budget -= scheduled;
    }

    // Livelock escape: if the cache is packed with half-prefilled requests
    // so that nothing could be scheduled, preempt the newest and retry so
    // the oldest prefill can finish (recompute preemption, vLLM-style).
    if (plan.empty() && running_.size() > 1 &&
        preempt_one(nullptr, &plan) >= 0)
        return schedule(now);

    return plan;
}

bool
Scheduler::cancel(Request* r)
{
    SP_ASSERT(r != nullptr);
    // Dead states sit in no queue: finished/cancelled are terminal,
    // migrated/lost/expired copies were already pulled out (and the
    // same id may live on elsewhere — a retry, the other hedge copy).
    if (r->state == RequestState::kFinished ||
        r->state == RequestState::kCancelled ||
        r->state == RequestState::kMigrated ||
        r->state == RequestState::kLost ||
        r->state == RequestState::kExpired)
        return false;
    if (r->state == RequestState::kWaiting) {
        const auto it = std::find(waiting_.begin(), waiting_.end(), r);
        SP_ASSERT(it != waiting_.end(), "waiting request not in queue");
        waiting_.erase(it);
    } else {
        const auto it = std::find(running_.begin(), running_.end(), r);
        SP_ASSERT(it != running_.end(), "running request not in queue");
        running_.erase(it);
    }
    cache_->release(r->id);
    detach_prefix_if_attached(r);
    r->state = RequestState::kCancelled;
    return true;
}

std::vector<Request*>
Scheduler::expire_due(double now)
{
    std::vector<Request*> expired;
    if (!has_deadlines_)
        return expired;
    auto due = [&](const Request* r) {
        return r->spec.deadline > 0.0 && r->spec.deadline <= now;
    };
    for (auto it = running_.begin(); it != running_.end();) {
        Request* r = *it;
        if (!due(r)) {
            ++it;
            continue;
        }
        cache_->release(r->id);
        detach_prefix_if_attached(r);
        it = running_.erase(it);
        expired.push_back(r);
    }
    for (auto it = waiting_.begin(); it != waiting_.end();) {
        Request* r = *it;
        if (!due(r)) {
            ++it;
            continue;
        }
        cache_->release(r->id);
        detach_prefix_if_attached(r);
        it = waiting_.erase(it);
        expired.push_back(r);
    }
    for (Request* r : expired) {
        r->state = RequestState::kExpired;
        publish(r, obs::RequestPhase::kExpired, now);
    }
    return expired;
}

double
Scheduler::earliest_deadline() const
{
    double earliest = std::numeric_limits<double>::infinity();
    if (!has_deadlines_)
        return earliest;
    for (const Request* r : running_)
        if (r->spec.deadline > 0.0)
            earliest = std::min(earliest, r->spec.deadline);
    for (const Request* r : waiting_)
        if (r->spec.deadline > 0.0)
            earliest = std::min(earliest, r->spec.deadline);
    return earliest;
}

std::vector<Request*>
Scheduler::drain_waiting()
{
    std::vector<Request*> removed;
    removed.reserve(waiting_.size());
    // A waiting request can hold cache state (prefix attached at the
    // admission gate); release it here so it re-enters another replica
    // clean, same as fail_all().
    for (Request* r : waiting_) {
        cache_->release(r->id);
        detach_prefix_if_attached(r);
        r->state = RequestState::kMigrated;
        removed.push_back(r);
    }
    waiting_.clear();
    return removed;
}

std::vector<Request*>
Scheduler::fail_all()
{
    std::vector<Request*> dropped;
    dropped.reserve(running_.size() + waiting_.size());
    for (Request* r : running_) {
        cache_->release(r->id);
        detach_prefix_if_attached(r);
        dropped.push_back(r);
    }
    running_.clear();
    // Waiting requests can hold KV too: a schedule() pass attaches a
    // prefix (and may fill it) before admission succeeds, so a request
    // blocked at the admission gate keeps its attachment in the queue.
    for (Request* r : waiting_) {
        cache_->release(r->id);
        detach_prefix_if_attached(r);
        dropped.push_back(r);
    }
    waiting_.clear();
    for (Request* r : dropped)
        r->state = RequestState::kLost;
    return dropped;
}

Request*
Scheduler::steal_waiting(double now, std::int64_t max_tokens)
{
    for (auto it = waiting_.rbegin(); it != waiting_.rend(); ++it) {
        Request* r = *it;
        // Only zero-progress requests move: anything scheduled before
        // (even if later preempted) or holding prefilled/prefix state has
        // sunk work into this engine that migration would discard, and
        // migrated-in prefilled requests (disaggregated decode) own KV
        // that lives on this pool. Scanning from the back moves the
        // youngest straggler: older requests keep their admission slot on
        // the donor, and the young one restarts at zero cost elsewhere.
        if (r->spec.arrival > now || r->first_scheduled >= 0.0 ||
            r->prefilled > 0 || r->prefix_attached || r->migrated_in)
            continue;
        if (r->spec.prompt_tokens + r->spec.output_tokens > max_tokens)
            continue;
        waiting_.erase(std::next(it).base());
        r->state = RequestState::kMigrated;
        return r;
    }
    return nullptr;
}

void
Scheduler::attach_prefix_if_needed(Request* r)
{
    if (!opts_.enable_prefix_caching || r->spec.prefix_id < 0 ||
        r->prefix_attached)
        return;
    // A fully-cached prompt still needs its final token computed for the
    // first logits, so the reusable prefix is capped one short.
    const std::int64_t target =
        std::min(r->spec.prefix_tokens, r->prefill_target - 1);
    if (target <= 0)
        return;
    // Hit statistics count a request's first attach only: a preempted and
    // re-admitted request re-attaches, but counting it again would inflate
    // the reported prefix hit rate.
    const auto attach = cache_->attach_prefix(
        r->spec.prefix_id, target, /*count_hit=*/!r->prefix_hit_counted);
    r->prefix_hit_counted = true;
    r->prefix_attached = true;
    r->prefix_hit = attach.hit_tokens;
    r->prefix_filled = attach.hit_tokens;
    r->filling_prefix = attach.is_filler;
    r->prefilled = attach.hit_tokens;
}

void
Scheduler::detach_prefix_if_attached(Request* r)
{
    if (!r->prefix_attached)
        return;
    cache_->detach_prefix(r->spec.prefix_id);
    r->prefix_attached = false;
    r->filling_prefix = false;
}

std::int64_t
Scheduler::schedule_prefill(Request* r, std::int64_t budget, BatchPlan* plan)
{
    std::int64_t chunk = std::min(r->prefill_remaining(), budget);
    chunk = std::min(chunk, cache_->free_tokens());
    if (chunk <= 0)
        return 0;
    const std::int64_t past =
        r->prefix_filled + cache_->cached_tokens(r->id);

    // Split the chunk between the shared prefix entry (filler only) and
    // this request's private blocks.
    std::int64_t to_prefix = 0;
    if (r->filling_prefix) {
        const std::int64_t target =
            std::min(r->spec.prefix_tokens, r->prefill_target - 1);
        to_prefix = std::clamp<std::int64_t>(target - r->prefix_filled, 0,
                                             chunk);
    }
    if (to_prefix > 0 &&
        !cache_->try_append_prefix(r->spec.prefix_id, to_prefix)) {
        return 0;
    }
    const std::int64_t to_private = chunk - to_prefix;
    if (to_private > 0 && !cache_->try_append(r->id, to_private)) {
        if (to_prefix == 0)
            return 0;
        chunk = to_prefix;  // schedule just the shared part this step
    }
    r->prefix_filled += to_prefix;
    plan->chunks.push_back({r, chunk, past, true});
    publish(r, obs::RequestPhase::kPrefillChunk, sched_now_, chunk);
    return chunk;
}

void
Scheduler::on_step_complete(double now, const BatchPlan& plan,
                            std::vector<Request*>* finished)
{
    SP_ASSERT(finished != nullptr);
    for (const auto& c : plan.chunks) {
        Request* r = c.request;
        if (c.is_prefill) {
            r->prefilled += c.new_tokens;
            SP_ASSERT(r->prefilled <= r->prefill_target,
                      "prefill overshoot");
            if (!r->prefill_done())
                continue;
            // The step that completes prefill also samples the next output
            // token (vLLM semantics): the first token for fresh requests,
            // the resumption token after a recompute preemption.
            r->state = RequestState::kDecode;
            r->decoded += 1;
            if (r->first_token < 0.0) {
                r->first_token = now;
                publish(r, obs::RequestPhase::kFirstToken, now);
            }
        } else {
            r->decoded += c.new_tokens;
        }
        if (r->done()) {
            r->state = RequestState::kFinished;
            r->finished = now;
            cache_->release(r->id);
            detach_prefix_if_attached(r);
            running_.erase(std::find(running_.begin(), running_.end(), r));
            finished->push_back(r);
            publish(r, obs::RequestPhase::kFinish, now,
                    r->spec.output_tokens);
        }
    }
}

double
Scheduler::earliest_waiting_arrival() const
{
    double earliest = std::numeric_limits<double>::infinity();
    for (const Request* r : waiting_)
        earliest = std::min(earliest, r->spec.arrival);
    return earliest;
}

std::int64_t
Scheduler::outstanding_tokens() const
{
    std::int64_t total = 0;
    for (const Request* r : waiting_)
        total += r->prefill_remaining() +
                 (r->spec.output_tokens - r->decoded);
    for (const Request* r : running_)
        total += r->prefill_remaining() +
                 (r->spec.output_tokens - r->decoded);
    return total;
}

} // namespace shiftpar::engine
