#include "engine/request.h"

namespace shiftpar::engine {

void
Request::reset_for_recompute()
{
    // Recompute preemption (vLLM-style): the KV blocks were released, so the
    // prompt plus every output token produced so far must be re-prefilled
    // before decoding can continue. Tokens already delivered to the client
    // are kept — only cache state is rebuilt.
    state = RequestState::kWaiting;
    prefill_target = spec.prompt_tokens + decoded;
    prefilled = 0;
    ++preemptions;
    // Prefix-cache state is re-established at the next admission (the
    // entry itself survives in the cache and shortens the recompute).
    prefix_attached = false;
    prefix_hit = 0;
    prefix_filled = 0;
    filling_prefix = false;
}

} // namespace shiftpar::engine
