/**
 * @file
 * Overload-robustness knobs and accounting for the request lifecycle.
 *
 * The fault layer (fault/fault_schedule.h) models *infrastructure*
 * failures: engines die, links degrade, requests retry or are shed. This
 * header models *request-level* robustness under overload — the serving
 * techniques a production front-end needs when traffic bursts past
 * capacity and back:
 *
 *  - per-request deadlines (`RequestSpec::deadline`): expired requests
 *    are evicted instead of burning tokens past their SLO;
 *  - client cancellation streams (`CancelEvent`), replayed as events on
 *    the cluster timeline;
 *  - hedged retries (`OverloadOptions::hedge_delay`): a still-queued
 *    request is duplicated onto the least-loaded other replica,
 *    first-completion-wins, the loser cancelled;
 *  - per-replica circuit breakers (`CircuitBreakerOptions`): an EWMA
 *    latency health score per engine with a closed -> open -> half-open
 *    state machine, so the router routes around sick-but-not-dead
 *    replicas (stragglers) instead of only fully failed ones.
 *
 * Everything here is off by default; with every knob at its default the
 * router's replay is bit-identical to one without the subsystem. When any
 * feature is active the conservation invariant becomes
 *
 *   submitted = completed + lost + shed + expired + cancelled
 *
 * which `Router::run_workload` asserts over its per-request flight table.
 */

#pragma once

#include <cstdint>

#include "engine/request.h"

namespace shiftpar::engine {

/**
 * Request-id offset of a hedge clone: the duplicate of request `i` is
 * submitted as `i + kHedgeIdOffset`, so both copies coexist on the
 * engines without colliding while the router maps either id back to the
 * logical request. Far above any workload's request count.
 */
constexpr RequestId kHedgeIdOffset = RequestId{1} << 40;

/** @return the logical request id behind a possibly-hedged engine id. */
constexpr RequestId
logical_request_id(RequestId id)
{
    return id >= kHedgeIdOffset ? id - kHedgeIdOffset : id;
}

/** @return true when `id` names a hedge clone. */
constexpr bool
is_hedge_clone(RequestId id)
{
    return id >= kHedgeIdOffset;
}

/** One client cancellation against a replayed workload. */
struct CancelEvent
{
    /**
     * Target request, by position in the arrival-sorted workload — the
     * same numbering `Router::run_workload` assigns request ids by.
     */
    std::int64_t index = 0;

    /** Cancellation time, seconds (>= the request's arrival). */
    double at = 0.0;
};

/**
 * Per-replica circuit breaker (closed -> open -> half-open). The router
 * keeps an EWMA of each replica's per-token service time; a replica whose
 * EWMA exceeds `trip_ratio` times the healthiest replica's trips open and
 * receives no traffic for `open_duration` seconds, then admits a single
 * probe request whose completion decides between closing and re-opening.
 */
struct CircuitBreakerOptions
{
    bool enabled = false;

    /** Weight of the newest sample in the health EWMA. */
    double ewma_alpha = 0.2;

    /** Trip when ewma > trip_ratio x (fleet-minimum ewma). */
    double trip_ratio = 2.0;

    /** Samples required before a breaker may trip. */
    int min_samples = 5;

    /** Seconds an open breaker waits before probing (half-open). */
    double open_duration = 5.0;
};

/** Overload-robustness policy, active only inside `run_workload`. */
struct OverloadOptions
{
    /**
     * Hedged retries: seconds after routing before a still-queued,
     * never-scheduled request is duplicated onto the least-loaded other
     * replica (0 disables). First completion wins; the loser is
     * cancelled through the normal cancel path.
     */
    double hedge_delay = 0.0;

    CircuitBreakerOptions breaker;

    /** @return true when any overload feature is switched on. */
    bool any() const { return hedge_delay > 0.0 || breaker.enabled; }
};

/** Counters of one overload-aware replay (reported per run). */
struct OverloadStats
{
    std::int64_t completed = 0;      ///< logical requests that finished
    std::int64_t expired = 0;        ///< evicted past their deadline
    std::int64_t cancelled = 0;      ///< client-cancelled requests
    std::int64_t hedges = 0;         ///< hedge clones submitted
    std::int64_t hedge_wins = 0;     ///< hedged requests that completed
    std::int64_t hedge_losses = 0;   ///< losing copies resolved (cancel/dup)
    std::int64_t breaker_opens = 0;  ///< closed/half-open -> open trips
    std::int64_t breaker_probes = 0; ///< half-open probe requests admitted
    std::int64_t breaker_closes = 0; ///< half-open -> closed recoveries
    std::int64_t drains = 0;         ///< graceful drains started
    std::int64_t drained = 0;        ///< waiting requests handed back
    std::int64_t drain_resumes = 0;  ///< drained engines re-admitted

    /** @return true when any counter is non-zero. */
    bool
    any() const
    {
        return (completed | expired | cancelled | hedges | hedge_wins |
                hedge_losses | breaker_opens | breaker_probes |
                breaker_closes | drains | drained | drain_resumes) != 0;
    }
};

} // namespace shiftpar::engine
