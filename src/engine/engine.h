/**
 * @file
 * The inference engine: one rank group running continuous batching under a
 * per-step execution policy.
 *
 * Each `step()` (i) assembles a batch via the scheduler, (ii) asks the
 * `ExecutionPolicy` which configuration to run it under — this is where
 * Shift Parallelism's Algorithm 2 plugs in — (iii) verifies the chosen
 * configuration's KV layout is invariant with the cache (Section 3.3.1),
 * (iv) advances the clock by the perf-model step time, and (v) applies the
 * step's effects. DP deployments instantiate several engines behind a
 * `Router`.
 */

#pragma once

#include <algorithm>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "engine/metrics.h"
#include "engine/request.h"
#include "engine/scheduler.h"
#include "kvcache/cache_manager.h"
#include "obs/trace.h"
#include "parallel/cost_model_factory.h"
#include "parallel/memory.h"
#include "parallel/perf_model.h"
#include "sim/component.h"

namespace shiftpar::engine {

/** Chooses the execution configuration for one step (Algorithm 2 hook). */
class ExecutionPolicy
{
  public:
    /** A per-step decision. */
    struct Choice
    {
        parallel::ParallelConfig cfg;

        /** True when shift-mode weights come from on-the-fly slicing. */
        bool sliced = false;
    };

    virtual ~ExecutionPolicy() = default;

    /**
     * @param batched_tokens The step's batch size (Alg. 2 input).
     * @return the configuration to execute this step under.
     */
    virtual Choice choose(std::int64_t batched_tokens) const = 0;

    /**
     * Attach the engine's trace bus (called once at construction when
     * tracing is on). `clock` points at the engine's simulated-time
     * counter and outlives the policy. Policies that make mode decisions
     * (the ShiftController) publish their transitions here; the default
     * is a no-op.
     */
    virtual void attach_trace(obs::TraceSink* /*sink*/, obs::EngineId /*id*/,
                              const double* /*clock*/)
    {
    }
};

/** Always run the same configuration (plain DP/TP/SP/SP+TP engines). */
class FixedPolicy : public ExecutionPolicy
{
  public:
    explicit FixedPolicy(parallel::ParallelConfig cfg) : cfg_(cfg) {}

    Choice choose(std::int64_t) const override { return {cfg_, false}; }

  private:
    parallel::ParallelConfig cfg_;
};

/** Engine construction parameters. */
struct EngineConfig
{
    /** The base (SP, TP) decomposition of this engine's rank group. */
    parallel::ParallelConfig base;

    SchedulerOptions sched;
    parallel::PerfOptions perf;
    parallel::MemoryOptions mem;

    /** Which step-cost model prices each iteration (default: roofline). */
    parallel::CostModelSpec cost;

    /**
     * Record cost-model telemetry (evaluation counter, per-kernel
     * time-share histograms) into `obs::MetricsRegistry::current()`. Off
     * by default; with it off the engine never touches the registry, so
     * default runs' reports stay byte-identical.
     */
    bool cost_metrics = false;

    /** Weight-handling strategy for shift mode (Section 3.3.2). */
    parallel::WeightStrategy weights =
        parallel::WeightStrategy::kSeparateModels;

    /** Reserve the shift model's weights per Eq. (1). */
    bool with_shift_model = false;

    /** KV block size, tokens. */
    int block_size = 16;

    /** Throughput timeline bin width, seconds. */
    double throughput_bin = 1.0;

    /**
     * Observability sink (borrowed, may be null). When set, the engine,
     * its scheduler, and its KV cache publish lifecycle/step/gauge events
     * under `trace_id`. Null disables tracing at zero cost — simulation
     * results are bit-identical either way.
     */
    obs::TraceSink* trace = nullptr;

    /** Engine id on the trace bus (from `TraceSink::register_engine`). */
    obs::EngineId trace_id = 0;
};

/**
 * One serving engine over one rank group.
 *
 * An engine is a `sim::Component`: the cluster core advances it one
 * scheduler iteration at a time, interleaved with other engines' steps
 * and with client events (arrivals, KV handoffs, migrations) in global
 * time order. The self-contained `run_until`/`drain` drive loop remains
 * for single-engine callers and as the lockstep reference the sim-core
 * equivalence test replays against.
 */
class Engine : public sim::Component
{
  public:
    /**
     * Build an engine; fatal() when the model does not fit the group's
     * memory under `cfg`.
     */
    Engine(const hw::Node& node, const model::ModelConfig& m,
           EngineConfig cfg, std::unique_ptr<ExecutionPolicy> policy);

    /**
     * Submit a request (arrival time may be in this engine's past).
     * `migrated_in` marks a request received through cross-replica
     * migration; such requests are never stolen again (one hop each).
     */
    void submit(const RequestSpec& spec, RequestId id,
                bool migrated_in = false);

    /**
     * Submit a request whose prompt was already prefilled elsewhere (a
     * decode worker receiving a migrated request in a disaggregated
     * deployment, Section 5). The prompt's KV is materialized on
     * admission without compute — the KV-transfer time is the caller's to
     * model via `spec.arrival` — and `already_decoded` output tokens are
     * credited (the prefill worker produced the first token).
     */
    void submit_prefilled(const RequestSpec& spec, RequestId id,
                          std::int64_t already_decoded = 1);

    /**
     * Advance simulated time to `t`, executing steps while work exists.
     * The final step may overshoot `t` (steps are atomic); idle time is
     * skipped.
     */
    void run_until(double t);

    /** Run until every submitted request has finished. */
    void drain();

    /** sim::Component: the profiler attributes this engine's wall time
     *  under "engine". */
    const char* kind() const override { return "engine"; }

    /**
     * sim::Component: earliest time this engine could act — its clock
     * while a step is attemptable (something running, or an arrived
     * request waiting), the earliest future arrival while it is idle
     * until one, +inf when it has no work.
     */
    double next_event_time() const override;

    /**
     * sim::Component: make one unit of progress — execute a single step,
     * or skip idle time to the next arrival when that lands within `t`.
     *
     * @return false when no progress is possible (no work, or every
     * schedulable request is blocked on KV) — the cluster parks the
     * engine until another event could unblock it.
     */
    bool advance_to(double t) override;

    /**
     * Advance the clock without doing work (never backwards). The cluster
     * replay syncs every replica to each arrival instant exactly like the
     * lockstep loop's trailing `now_ = max(now_, t)`, keeping the two
     * replays bit-identical. Moving the clock can promote a
     * future-arrival wait into "ready now", so the ready cache is
     * notified.
     */
    void advance_clock_to(double t)
    {
        if (t > now_) {
            now_ = t;
            notify_ready_changed();
        }
    }

    /**
     * Remove and return the youngest waiting request that has made no
     * progress (never scheduled, no KV, no prefix pin, arrival in this
     * engine's past, not itself migrated in) and whose total context
     * fits `max_tokens`, so a
     * router can re-submit it on another replica. The request leaves
     * this engine permanently and produces no record here.
     *
     * @return the spec and id, or nullopt when nothing is stealable.
     */
    std::optional<std::pair<RequestSpec, RequestId>> steal_waiting(
        std::int64_t max_tokens =
            std::numeric_limits<std::int64_t>::max());

    /**
     * Install a hook fired as each request completes, before the request
     * is recorded into this engine's metrics. Returning false suppresses
     * the metrics record (step/throughput accounting is unaffected) —
     * the router uses this to keep a losing hedge copy that finished
     * before its cancel event from double-reporting its logical request.
     * The disaggregated pipeline uses the hook to schedule KV handoffs
     * the moment prefill finishes. Null disables (always record).
     */
    void set_on_finish(std::function<bool(const Request&)> hook)
    {
        on_finish_ = std::move(hook);
    }

    /**
     * Install a hook fired when a request is evicted past its completion
     * deadline (after the scheduler released its state). The router uses
     * it to settle the request's lifecycle outcome. Null disables.
     */
    void set_on_expire(std::function<void(RequestId, double)> hook)
    {
        on_expire_ = std::move(hook);
    }

    /** @return current simulated time, seconds. */
    double now() const { return now_; }

    /** @return true while any request is unfinished. */
    bool has_work() const { return scheduler_.has_work(); }

    /** @return unprocessed tokens across queued + running requests. */
    std::int64_t outstanding_tokens() const
    {
        return scheduler_.outstanding_tokens();
    }

    /** @return collected telemetry. */
    const Metrics& metrics() const { return metrics_; }

    /** @return per-GPU memory plan in force. */
    const parallel::MemoryPlan& memory_plan() const { return mem_plan_; }

    /** @return the KV cache (for inspection in tests). */
    const kvcache::CacheManager& cache() const { return cache_; }

    /** @return total preemptions performed. */
    std::int64_t preemption_count() const
    {
        return scheduler_.preemption_count();
    }

    /**
     * Cancel a live request (client abort between steps): its queue slot
     * and KV cache are released immediately and it produces no record.
     *
     * @return true when the request existed and was still live.
     */
    bool cancel(RequestId id);

    /** @return requests cancelled so far. */
    std::int64_t cancelled_count() const { return cancelled_; }

    /** @return requests evicted past their deadline so far. */
    std::int64_t expired_count() const { return expired_; }

    /**
     * @return true when `id` is live here, still queued, and has never
     * been scheduled — i.e. zero sunk work, the precondition a router
     * checks before duplicating the request onto another replica (hedged
     * retry) so the two copies never both burn compute.
     */
    bool queued_unscheduled(RequestId id) const;

    /**
     * Begin a graceful drain at time `t`: admission stops (`submit`
     * asserts), every still-waiting request is handed back for the
     * caller to re-route, and running requests continue to completion
     * here. Publishes a `drain_start` fault transition. Invalid on a
     * failed or already-draining engine.
     *
     * @return the handed-back (spec, id) pairs in queue order.
     */
    std::vector<std::pair<RequestSpec, RequestId>> start_drain(double t);

    /**
     * End a drain at time `t`: the engine admits new work again.
     * Publishes a `drain_end` fault transition. Only valid while
     * draining.
     */
    void resume_admission(double t);

    /** @return true while draining (admission closed). */
    bool draining() const { return draining_; }

    /**
     * Fail-stop this engine at time `t` (fault injection): every live
     * request is dropped with its KV state — running requests first
     * (admission order) then waiting ones (queue order) — and the
     * engine's HBM contents, including idle prefix-cache entries, are
     * destroyed. Because the engine models a whole SP x TP rank group,
     * losing any one rank takes the entire group down: TP-heavy
     * deployments lose all their GPUs to one fault while DP deployments
     * lose a single replica's share. A failed engine reports no events
     * and makes no progress until `recover()`.
     *
     * @return the dropped requests' (spec, id) pairs in drop order, for a
     * router to retry elsewhere. Finished requests are unaffected.
     */
    std::vector<std::pair<RequestSpec, RequestId>> fail(double t);

    /**
     * Rejoin the cluster at time `t` with an empty KV cache and healthy
     * (1x) speed. Only valid on a failed engine.
     */
    void recover(double t);

    /** @return true while fail-stopped. */
    bool failed() const { return failed_; }

    /**
     * Straggler injection: scale every subsequent step's full timing by
     * `factor` (> 1 slows; exactly 1 restores and is bit-identical to an
     * unfaulted run). Publishes a straggle_start/straggle_end trace
     * transition at time `t`.
     */
    void set_slowdown(double factor, double t);

    /**
     * Interconnect degradation: scale the communication component of
     * every subsequent step by `factor` (1 restores, bit-identically).
     * Publishes a link_degrade/link_restore trace transition at `t`.
     */
    void set_comm_multiplier(double factor, double t);

    /** @return GPUs in this engine's rank group (SP x TP). */
    int num_gpus() const { return cfg_.base.world(); }

    /** @return this engine's id on the trace bus (0 when untraced). */
    obs::EngineId trace_id() const { return cfg_.trace_id; }

  private:
    /** Execute one iteration; @return false when nothing was schedulable. */
    bool step();

    /**
     * Evict deadline-passed requests at the current clock; fires
     * `on_expire_` per eviction. @return true when anything expired.
     */
    bool expire_now();

    /** Record the eval counter + kernel-share histograms for one step. */
    void record_cost_metrics(
        const parallel::StepTiming& timing,
        const std::vector<parallel::KernelCost>& breakdown) const;

    model::ModelConfig model_;
    EngineConfig cfg_;
    std::unique_ptr<const model::CostModel> cost_model_;
    parallel::MemoryPlan mem_plan_;
    kvcache::CacheManager cache_;
    kvcache::KvLayout shift_layout_;
    Scheduler scheduler_;
    std::unique_ptr<ExecutionPolicy> policy_;
    Metrics metrics_;
    std::vector<std::unique_ptr<Request>> requests_;
    std::function<bool(const Request&)> on_finish_;
    std::function<void(RequestId, double)> on_expire_;
    double now_ = 0.0;
    std::int64_t cancelled_ = 0;
    std::int64_t expired_ = 0;
    bool failed_ = false;
    bool draining_ = false;  ///< graceful drain: admission closed
    double slowdown_ = 1.0;         ///< straggler factor (1 = healthy)
    double comm_multiplier_ = 1.0;  ///< interconnect factor (1 = healthy)
};

} // namespace shiftpar::engine
