/**
 * @file
 * Multi-engine front-end: request routing and workload replay.
 *
 * A `Router` owns one engine per replica. Single-engine deployments (TP,
 * SP, Shift) use a one-element router; DP deployments use one engine per
 * GPU. `run_workload` replays a trace on the discrete-event cluster core
 * (`sim::Cluster`): arrivals are posted as events, every engine is a
 * component stepped in global time order, and the result is bit-identical
 * to the historical lockstep replay (advance everyone to each arrival,
 * submit, drain) — which is exactly how the paper's client-side benchmark
 * drives the server. The shared timeline additionally enables an optional
 * cross-replica migration hook that re-routes queued stragglers from
 * overloaded replicas to idle ones between events.
 */

#pragma once

#include <memory>
#include <vector>

#include "engine/engine.h"

namespace shiftpar::engine {

/** Replica-selection policy for DP deployments. */
enum class RoutingPolicy
{
    kRoundRobin,

    /** Route to the replica with the fewest outstanding tokens. */
    kLeastTokens,
};

/**
 * Cross-replica rebalancing policy (off by default; replay is then
 * bit-identical to a router without the hook). After every cluster event,
 * when the gap between the most- and least-loaded replica's outstanding
 * tokens exceeds `min_token_imbalance`, one zero-progress waiting request
 * is stolen from the back of the overloaded replica's queue and
 * re-submitted to the least-loaded replica — the correction DP routing
 * cannot make at arrival time because it cannot see the future.
 */
struct MigrationOptions
{
    bool enabled = false;

    /** Outstanding-token gap that triggers a migration. */
    std::int64_t min_token_imbalance = 8192;
};

/** Routes requests across replicas and replays workloads. */
class Router
{
  public:
    /**
     * @param engines One or more replicas (takes ownership).
     * @param policy Replica-selection policy.
     */
    Router(std::vector<std::unique_ptr<Engine>> engines,
           RoutingPolicy policy = RoutingPolicy::kLeastTokens,
           MigrationOptions migration = {});

    /** Advance all replicas to time `t` (lockstep drive; see class doc). */
    void run_until(double t);

    /** Route and submit one request at its arrival time. */
    void submit(const RequestSpec& spec, RequestId id);

    /** Drain all replicas. */
    void drain();

    /**
     * Replay a full workload on the cluster core: arrivals, routing,
     * engine steps, and (when enabled) migrations interleave as events on
     * one clock. Request ids are assigned by position. Bit-identical to
     * the lockstep replay (`run_until` each arrival, `submit`, `drain`)
     * when migration is disabled.
     *
     * @return merged metrics across replicas.
     */
    Metrics run_workload(const std::vector<RequestSpec>& workload);

    /** @return requests moved by the migration hook so far. */
    std::int64_t migration_count() const { return migrations_; }

    /** @return merged metrics across replicas (after running). */
    Metrics merged_metrics() const;

    /** @return replica count. */
    std::size_t size() const { return engines_.size(); }

    /** @return replica `i`. */
    Engine& engine(std::size_t i) { return *engines_.at(i); }
    const Engine& engine(std::size_t i) const { return *engines_.at(i); }

    /**
     * Publish routing decisions to `sink` (borrowed, may be null): each
     * `submit` emits a `kRouted` lifecycle event under the chosen
     * replica's trace id.
     */
    void set_trace(obs::TraceSink* sink) { trace_ = sink; }

  private:
    /** Pick the replica for the next request. */
    std::size_t select_replica();

    /**
     * Migration hook, run after every cluster event: move at most one
     * queued straggler from the most- to the least-loaded replica when
     * the imbalance warrants it (one per event keeps the policy
     * convergent — each event gets one corrective move).
     */
    void rebalance(double t);

    std::vector<std::unique_ptr<Engine>> engines_;
    RoutingPolicy policy_;
    MigrationOptions migration_;
    std::size_t next_rr_ = 0;
    std::int64_t migrations_ = 0;
    obs::TraceSink* trace_ = nullptr;
};

} // namespace shiftpar::engine
