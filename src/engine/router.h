/**
 * @file
 * Multi-engine front-end: request routing and workload replay.
 *
 * A `Router` owns one engine per replica. Single-engine deployments (TP,
 * SP, Shift) use a one-element router; DP deployments use one engine per
 * GPU. `run_workload` replays a trace — advancing every engine's clock to
 * each arrival, routing the request, then draining — which is exactly how
 * the paper's client-side benchmark drives the server.
 */

#pragma once

#include <memory>
#include <vector>

#include "engine/engine.h"

namespace shiftpar::engine {

/** Replica-selection policy for DP deployments. */
enum class RoutingPolicy
{
    kRoundRobin,

    /** Route to the replica with the fewest outstanding tokens. */
    kLeastTokens,
};

/** Routes requests across replicas and replays workloads. */
class Router
{
  public:
    /**
     * @param engines One or more replicas (takes ownership).
     * @param policy Replica-selection policy.
     */
    Router(std::vector<std::unique_ptr<Engine>> engines,
           RoutingPolicy policy = RoutingPolicy::kLeastTokens);

    /** Advance all replicas to time `t`. */
    void run_until(double t);

    /** Route and submit one request at its arrival time. */
    void submit(const RequestSpec& spec, RequestId id);

    /** Drain all replicas. */
    void drain();

    /**
     * Replay a full workload: submit every request at its arrival time and
     * drain. Request ids are assigned by position.
     *
     * @return merged metrics across replicas.
     */
    Metrics run_workload(const std::vector<RequestSpec>& workload);

    /** @return merged metrics across replicas (after running). */
    Metrics merged_metrics() const;

    /** @return replica count. */
    std::size_t size() const { return engines_.size(); }

    /** @return replica `i`. */
    Engine& engine(std::size_t i) { return *engines_.at(i); }
    const Engine& engine(std::size_t i) const { return *engines_.at(i); }

    /**
     * Publish routing decisions to `sink` (borrowed, may be null): each
     * `submit` emits a `kRouted` lifecycle event under the chosen
     * replica's trace id.
     */
    void set_trace(obs::TraceSink* sink) { trace_ = sink; }

  private:
    /** Pick the replica for the next request. */
    std::size_t select_replica();

    std::vector<std::unique_ptr<Engine>> engines_;
    RoutingPolicy policy_;
    std::size_t next_rr_ = 0;
    obs::TraceSink* trace_ = nullptr;
};

} // namespace shiftpar::engine
