/**
 * @file
 * Multi-engine front-end: request routing and workload replay.
 *
 * A `Router` owns one engine per replica. Single-engine deployments (TP,
 * SP, Shift) use a one-element router; DP deployments use one engine per
 * GPU. `run_workload` replays a trace on the discrete-event cluster core
 * (`sim::Cluster`): arrivals are posted as events, every engine is a
 * component stepped in global time order, and the result is bit-identical
 * to the historical lockstep replay (advance everyone to each arrival,
 * submit, drain) — which is exactly how the paper's client-side benchmark
 * drives the server. The shared timeline additionally enables an optional
 * cross-replica migration hook that re-routes queued stragglers from
 * overloaded replicas to idle ones between events.
 */

#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "engine/engine.h"
#include "engine/overload.h"
#include "fault/fault_schedule.h"
#include "sim/cluster.h"

namespace shiftpar::engine {

/** Replica-selection policy for DP deployments. */
enum class RoutingPolicy
{
    kRoundRobin,

    /** Route to the replica with the fewest outstanding tokens. */
    kLeastTokens,
};

/**
 * Cross-replica rebalancing policy (off by default; replay is then
 * bit-identical to a router without the hook). After every cluster event,
 * when the gap between the most- and least-loaded replica's outstanding
 * tokens exceeds `min_token_imbalance`, one zero-progress waiting request
 * is stolen from the back of the overloaded replica's queue and
 * re-submitted to the least-loaded replica — the correction DP routing
 * cannot make at arrival time because it cannot see the future.
 */
struct MigrationOptions
{
    bool enabled = false;

    /** Outstanding-token gap that triggers a migration. */
    std::int64_t min_token_imbalance = 8192;
};

/**
 * Failure-recovery policy, active only when a fault schedule is set.
 *
 * When a replica fail-stops, its dropped requests are retried on a
 * surviving replica after a capped exponential backoff (attempt n waits
 * min(backoff_base * 2^(n-1), backoff_cap) seconds, modeling client
 * retry loops); a request that exhausts `max_retries` is permanently
 * lost. While the cluster is degraded below `shed_watermark` (surviving
 * GPU fraction), new arrivals are load-shed — either all of them, or,
 * when the SLO-aware knobs are set, only those whose estimated queueing
 * wait (best surviving backlog / `replica_tokens_per_s`) exceeds
 * `shed_ttft_slo` — so the survivors keep meeting the SLO instead of
 * melting down under the full offered load.
 */
struct ResilienceOptions
{
    /** Retry attempts per request before it is declared lost. */
    int max_retries = 3;

    /** First-retry backoff, seconds. */
    double backoff_base = 0.25;

    /** Backoff ceiling, seconds. */
    double backoff_cap = 4.0;

    /**
     * Shed new arrivals while surviving GPUs / total GPUs is below this
     * fraction (0 disables shedding).
     */
    double shed_watermark = 0.0;

    /**
     * SLO-aware shedding: admit arrivals whose estimated wait stays
     * within this TTFT bound, seconds. 0 sheds every arrival while
     * degraded below the watermark.
     */
    double shed_ttft_slo = 0.0;

    /** Serving rate per replica for the wait estimate, tokens/s. */
    double replica_tokens_per_s = 0.0;
};

/** Routes requests across replicas and replays workloads. */
class Router
{
  public:
    /**
     * @param engines One or more replicas (takes ownership).
     * @param policy Replica-selection policy.
     */
    Router(std::vector<std::unique_ptr<Engine>> engines,
           RoutingPolicy policy = RoutingPolicy::kLeastTokens,
           MigrationOptions migration = {});

    /** Advance all replicas to time `t` (lockstep drive; see class doc). */
    void run_until(double t);

    /** Route and submit one request at its arrival time. */
    void submit(const RequestSpec& spec, RequestId id);

    /** Drain all replicas. */
    void drain();

    /**
     * Replay a full workload on the cluster core: arrivals, routing,
     * engine steps, and (when enabled) migrations interleave as events on
     * one clock. Request ids are assigned by position. Bit-identical to
     * the lockstep replay (`run_until` each arrival, `submit`, `drain`)
     * when migration is disabled.
     *
     * @return merged metrics across replicas.
     */
    Metrics run_workload(const std::vector<RequestSpec>& workload);

    /** @return requests moved by the migration hook so far. */
    std::int64_t migration_count() const { return migrations_; }

    /**
     * Install a fault-injection schedule and recovery policy for the next
     * `run_workload` (the lockstep `run_until`/`submit`/`drain` path does
     * not replay faults). The schedule is materialized against this
     * router's replicas — rank addresses resolve to whole engines, so one
     * lost rank stalls its entire SP x TP group — and every fault becomes
     * an event on the replay's cluster timeline. With an empty schedule
     * the replay is bit-identical to an unfaulted one.
     */
    void set_faults(fault::FaultSchedule schedule,
                    ResilienceOptions resilience = {})
    {
        faults_ = std::move(schedule);
        resilience_ = resilience;
    }

    /** @return fault/recovery counters from the last `run_workload`. */
    const fault::FaultStats& fault_stats() const { return fault_stats_; }

    /**
     * Configure hedged retries and per-replica circuit breakers for the
     * next `run_workload`. Hedging (hedge_delay > 0) duplicates a request
     * that is still queued-unscheduled after the delay onto the
     * least-loaded other replica; the first copy to finish wins and the
     * loser is cancelled. Breakers score each replica's per-token service
     * latency with an EWMA and stop routing to a replica whose score
     * trips `trip_ratio` x the best peer (closed -> open -> half-open
     * probe -> closed). Default-constructed options leave the replay
     * bit-identical to an unconfigured router.
     */
    void set_overload(const OverloadOptions& opts) { overload_ = opts; }

    /**
     * Install a client-cancellation stream for the next `run_workload`:
     * each entry aborts one request (addressed by its position in the
     * arrival-sorted workload, which equals its assigned id) at time
     * `at`, wherever that request is — queued, running, hedged onto two
     * replicas, or waiting out a retry backoff. An empty stream is
     * bit-identical to an unconfigured router.
     */
    void set_cancellations(std::vector<CancelEvent> cancels)
    {
        cancels_ = std::move(cancels);
    }

    /**
     * @return lifecycle-outcome counters from the last `run_workload`.
     * When any lifecycle feature was active, conservation holds:
     * submitted = completed + lost + shed + expired + cancelled.
     */
    const OverloadStats& overload_stats() const { return overload_stats_; }

    /** @return merged metrics across replicas (after running). */
    Metrics merged_metrics() const;

    /** @return replica count. */
    std::size_t size() const { return engines_.size(); }

    /** @return replica `i`. */
    Engine& engine(std::size_t i) { return *engines_.at(i); }
    const Engine& engine(std::size_t i) const { return *engines_.at(i); }

    /**
     * Publish routing decisions to `sink` (borrowed, may be null): each
     * `submit` emits a `kRouted` lifecycle event under the chosen
     * replica's trace id.
     */
    void set_trace(obs::TraceSink* sink) { trace_ = sink; }

    /**
     * Attach a self-profiling accumulator (borrowed, may be null) to the
     * cluster the next `run_workload` builds. Profiling observes host
     * time only; simulation results are bit-identical either way.
     */
    void set_profile(sim::ClusterProfile* profile) { profile_ = profile; }

  private:
    /**
     * Pick the replica for the next request, skipping failed ones.
     *
     * @return the replica index, or `size()` when every replica is down.
     */
    std::size_t select_replica();

    /**
     * Migration hook, run after every cluster event: move at most one
     * queued straggler from the most- to the least-loaded replica when
     * the imbalance warrants it (one per event keeps the policy
     * convergent — each event gets one corrective move).
     */
    void rebalance(double t);

    /**
     * Route one request at time `t` during a cluster replay: shed when
     * the degraded-mode guard says so, otherwise submit to the selected
     * replica, falling into the retry path when every replica is down.
     * Identical to `submit` when no faults are configured.
     */
    void admit(const RequestSpec& spec, RequestId id, double t);

    /** Post the materialized fault schedule onto the replay timeline. */
    void arm_faults(sim::Cluster* cluster);

    /** Apply a fail-stop: drop state, cancel restores, schedule retries. */
    void on_engine_failure(std::size_t idx, double t);

    /** Rejoin a failed replica at `t`. */
    void on_engine_recovery(std::size_t idx, double t);

    /**
     * Schedule a retry of a dropped request (or declare it lost once its
     * attempts are exhausted). The retry fires after a capped exponential
     * backoff and re-picks a surviving replica at fire time.
     */
    void schedule_retry(const RequestSpec& spec, RequestId id, double t);

    /** @return true when the degraded-mode guard sheds this arrival. */
    bool should_shed(double t) const;

    /** Publish a request lifecycle event on the router's trace. */
    void publish(obs::EngineId engine, RequestId id, obs::RequestPhase phase,
                 double t, std::int64_t tokens = 0) const;

    // ---- Request lifecycle (deadlines / cancels / hedges / breakers) ----

    /** Terminal settlement of one logical request during a replay. */
    enum class FlightOutcome
    {
        kInFlight,   ///< not settled yet
        kCompleted,  ///< some copy finished
        kExpired,    ///< evicted past its deadline (every live copy)
        kCancelled,  ///< client abort landed first
        kLost,       ///< retries exhausted
        kShed,       ///< rejected at admission
    };

    /** Per-logical-request lifecycle bookkeeping (indexed by id). */
    struct Flight
    {
        FlightOutcome outcome = FlightOutcome::kInFlight;
        bool hedged = false;        ///< a clone copy was submitted
        bool primary_live = false;  ///< primary copy sits on some replica
        bool clone_live = false;    ///< hedge clone sits on some replica
    };

    /** Per-replica circuit-breaker state machine. */
    struct Breaker
    {
        enum class State
        {
            kClosed,    ///< routing normally
            kOpen,      ///< excluded from routing until `reopen_at`
            kHalfOpen,  ///< admits one probe request
        };

        State state = State::kClosed;
        double ewma = 0.0;          ///< per-token service-latency score
        std::int64_t samples = 0;
        double reopen_at = 0.0;     ///< open -> half-open transition time
        RequestId probe = -1;       ///< outstanding half-open probe
    };

    /**
     * Engine on_finish hook while lifecycle features are active.
     * @return false when this finish is a duplicate copy of an
     * already-settled request (a losing hedge copy that completed before
     * its cancel event) and must not be recorded in metrics.
     */
    bool on_lifecycle_finish(std::size_t idx, const Request& r);

    /** Engine on_expire hook: settle an evicted copy's flight. */
    void settle_expired(std::size_t idx, RequestId id, double t);

    /** Client abort of request `id` at time `t` (cancel-stream event). */
    void do_cancel(RequestId id, double t);

    /** Hedge timer: duplicate `id` if it is still queued-unscheduled. */
    void maybe_hedge(const RequestSpec& spec, RequestId id, double when);

    /** First-completion-wins: cancel the losing hedge copy. */
    void resolve_hedge_loser(RequestId logical, RequestId loser,
                             double when);

    /** Record a copy landing on replica `pick` (liveness + probe mark). */
    void note_submit(std::size_t pick, RequestId id);

    /** Bump `shiftpar_request_outcome_total{outcome=...}` (lifecycle
     *  paths only, so feature-off runs never touch the registry). */
    void count_outcome(const char* outcome, std::int64_t n = 1) const;

    /** Feed one completion into replica `idx`'s breaker; trip/close. */
    void record_breaker_sample(std::size_t idx, const Request& r);

    /** Lazy open -> half-open transitions due by time `t`. */
    void update_breakers(double t);

    /** @return the best qualified peer EWMA (excluding `idx`), or +inf. */
    double best_other_ewma(std::size_t idx) const;

    /** @return true when the breaker keeps new work off replica `i`. */
    bool breaker_excludes(std::size_t i) const;

    /** Publish a breaker transition on the fault track. */
    void publish_breaker(std::size_t idx, obs::FaultKind kind, double t,
                         double magnitude = 0.0) const;

    /** Forget a settled request that was a half-open probe. */
    void clear_breaker_probe(RequestId id);

    /** Assert submitted = completed + lost + shed + expired + cancelled. */
    void assert_conservation(std::size_t submitted) const;

    std::vector<std::unique_ptr<Engine>> engines_;
    RoutingPolicy policy_;
    MigrationOptions migration_;
    std::size_t next_rr_ = 0;
    std::int64_t migrations_ = 0;
    obs::TraceSink* trace_ = nullptr;
    sim::ClusterProfile* profile_ = nullptr;

    fault::FaultSchedule faults_;
    ResilienceOptions resilience_;
    fault::FaultStats fault_stats_;
    sim::Cluster* active_cluster_ = nullptr;  ///< replay-scoped borrow
    std::unordered_map<RequestId, int> attempts_;  ///< retry counts
    /** Pending straggle/degrade restore events, cancelled on fail-stop. */
    std::vector<std::vector<sim::EventId>> pending_restores_;

    OverloadOptions overload_;
    std::vector<CancelEvent> cancels_;
    OverloadStats overload_stats_;
    /** True while the current replay tracks flights (any deadline, a
     *  cancel stream, hedging, or breakers). False = seed code path. */
    bool lifecycle_active_ = false;
    std::vector<Flight> flights_;    ///< indexed by logical request id
    std::vector<Breaker> breakers_;  ///< one per replica when enabled
};

} // namespace shiftpar::engine
