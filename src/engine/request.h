/**
 * @file
 * Inference request lifecycle.
 *
 * A request arrives with a prompt and a target output length, is prefilled
 * (possibly in chunks), then decodes one token per engine step until done.
 * Timestamps recorded along the way produce the paper's three metrics:
 * TTFT (arrival -> first output token), TPOT (inter-token time thereafter),
 * and completion time (arrival -> last token).
 */

#pragma once

#include <cstdint>

namespace shiftpar::engine {

/** Unique request identifier (assigned by the submitter). */
using RequestId = std::int64_t;

/** What a client submits: arrival time and token counts. */
struct RequestSpec
{
    /** Arrival (submission) time, seconds from experiment start. */
    double arrival = 0.0;

    /** Prompt length, tokens. */
    std::int64_t prompt_tokens = 0;

    /** Output length to generate, tokens (>= 1). */
    std::int64_t output_tokens = 1;

    /**
     * Shared-prefix identity for automatic prefix caching (-1 = none).
     * Requests with equal `prefix_id` share their first `prefix_tokens`
     * prompt tokens (an agent's system prompt + accumulated context); the
     * engine serves those from cache when resident.
     */
    std::int64_t prefix_id = -1;

    /** Length of the shared prefix, tokens (<= prompt_tokens). */
    std::int64_t prefix_tokens = 0;

    /**
     * Scheduling priority (Section 2.1's QoS classes): higher values are
     * admitted first; ties keep FCFS order. Latency-sensitive interactive
     * requests can outrank throughput-oriented batch requests sharing the
     * deployment.
     */
    int priority = 0;

    /**
     * Completion deadline, absolute seconds on the experiment clock
     * (0 = none). A request that has not finished by its deadline is
     * evicted by the scheduler (KV released, state `kExpired`) instead of
     * burning further tokens on an answer the client stopped waiting for.
     */
    double deadline = 0.0;
};

/** Lifecycle state of a request inside an engine. */
enum class RequestState
{
    kWaiting,    ///< queued, no KV allocated (or preempted & reset)
    kPrefill,    ///< admitted; prompt partially processed
    kDecode,     ///< prefill complete; generating output tokens
    kFinished,   ///< all output tokens produced
    kCancelled,  ///< aborted by the client before completion
    kMigrated,   ///< moved to another replica before making progress
    kLost,       ///< dropped by an engine failure (KV state destroyed)
    kExpired,    ///< evicted past its completion deadline
};

/** A live request tracked by an engine. */
struct Request
{
    RequestId id = 0;
    RequestSpec spec;

    RequestState state = RequestState::kWaiting;

    /** Prompt tokens prefilled so far. */
    std::int64_t prefilled = 0;

    /**
     * Tokens that must be prefilled before decoding (the prompt, plus any
     * already-produced output that recompute preemption re-processes).
     * Initialized by the engine at submission.
     */
    std::int64_t prefill_target = 0;

    /** Output tokens produced so far. */
    std::int64_t decoded = 0;

    /** Times the request was preempted (recompute preemption). */
    int preemptions = 0;

    /** True while this request pins its shared prefix-cache entry. */
    bool prefix_attached = false;

    /**
     * True when this request reached the engine through cross-replica
     * migration. Migrated requests are never stolen again — one hop per
     * request keeps the rebalancer from bouncing work between queues.
     */
    bool migrated_in = false;

    /** Prompt tokens served from the prefix cache on (re-)admission. */
    std::int64_t prefix_hit = 0;

    /**
     * True once this request's prefix hit has been counted in the cache's
     * hit statistics. Unlike the other prefix fields this survives
     * recompute preemption, so a preempted-then-resumed request does not
     * double-count its hit.
     */
    bool prefix_hit_counted = false;

    /** True while this request is filling its prefix-cache entry. */
    bool filling_prefix = false;

    /** Tokens this request has appended into the prefix entry so far. */
    std::int64_t prefix_filled = 0;

    /** Time the first chunk was scheduled (-1 until then). */
    double first_scheduled = -1.0;

    /** Time the first output token was produced (-1 until then). */
    double first_token = -1.0;

    /** Time the last output token was produced (-1 until then). */
    double finished = -1.0;

    /** @return true once all required context has been prefilled. */
    bool prefill_done() const { return prefilled >= prefill_target; }

    /** @return prefill tokens still to process. */
    std::int64_t prefill_remaining() const
    {
        return prefill_target - prefilled;
    }

    /** @return true once all output tokens have been produced. */
    bool done() const { return decoded >= spec.output_tokens; }

    /** @return time to first token (valid once first_token is set). */
    double ttft() const { return first_token - spec.arrival; }

    /**
     * @return mean time per output token after the first (valid once
     * finished); 0 for single-token outputs.
     */
    double tpot() const
    {
        return spec.output_tokens > 1
                   ? (finished - first_token) /
                         static_cast<double>(spec.output_tokens - 1)
                   : 0.0;
    }

    /** @return end-to-end completion time (valid once finished). */
    double completion() const { return finished - spec.arrival; }

    /** Reset progress for recompute preemption (KV was released). */
    void reset_for_recompute();
};

} // namespace shiftpar::engine
