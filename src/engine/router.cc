#include "engine/router.h"

#include <algorithm>

#include "sim/cluster.h"
#include "util/logging.h"

namespace shiftpar::engine {

Router::Router(std::vector<std::unique_ptr<Engine>> engines,
               RoutingPolicy policy, MigrationOptions migration)
    : engines_(std::move(engines)), policy_(policy), migration_(migration)
{
    SP_ASSERT(!engines_.empty());
}

void
Router::run_until(double t)
{
    for (auto& e : engines_)
        e->run_until(t);
}

std::size_t
Router::select_replica()
{
    if (engines_.size() == 1)
        return 0;
    if (policy_ == RoutingPolicy::kRoundRobin) {
        const std::size_t pick = next_rr_;
        next_rr_ = (next_rr_ + 1) % engines_.size();
        return pick;
    }
    std::size_t best = 0;
    std::int64_t best_load = engines_[0]->outstanding_tokens();
    for (std::size_t i = 1; i < engines_.size(); ++i) {
        const std::int64_t load = engines_[i]->outstanding_tokens();
        if (load < best_load) {
            best = i;
            best_load = load;
        }
    }
    return best;
}

void
Router::submit(const RequestSpec& spec, RequestId id)
{
    const std::size_t pick = select_replica();
    engines_[pick]->submit(spec, id);
    if (trace_) {
        trace_->on_request({engines_[pick]->trace_id(), id,
                            obs::RequestPhase::kRouted, spec.arrival,
                            spec.prompt_tokens});
    }
}

void
Router::drain()
{
    for (auto& e : engines_)
        e->drain();
}

void
Router::rebalance(double t)
{
    if (engines_.size() < 2)
        return;
    std::size_t busiest = 0, idlest = 0;
    std::int64_t max_load = engines_[0]->outstanding_tokens();
    std::int64_t min_load = max_load;
    for (std::size_t i = 1; i < engines_.size(); ++i) {
        const std::int64_t load = engines_[i]->outstanding_tokens();
        if (load > max_load) {
            max_load = load;
            busiest = i;
        }
        if (load < min_load) {
            min_load = load;
            idlest = i;
        }
    }
    const std::int64_t gap = max_load - min_load;
    if (gap < migration_.min_token_imbalance)
        return;
    // The size cap keeps the move imbalance-shrinking: a straggler bigger
    // than the gap would just flip the roles and ping-pong.
    const auto stolen = engines_[busiest]->steal_waiting(gap);
    if (!stolen)
        return;
    const auto& [spec, id] = *stolen;
    // The move happens at the cluster's current instant: the receiver may
    // not act on the request before `t`, but must not burn the donor's
    // step overshoot as idle time either.
    engines_[idlest]->advance_clock_to(t);
    engines_[idlest]->submit(spec, id, /*migrated_in=*/true);
    ++migrations_;
    if (trace_) {
        trace_->on_request({engines_[idlest]->trace_id(), id,
                            obs::RequestPhase::kMigrated, t,
                            spec.prompt_tokens});
    }
}

Metrics
Router::run_workload(const std::vector<RequestSpec>& workload)
{
    std::vector<RequestSpec> sorted = workload;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const RequestSpec& a, const RequestSpec& b) {
                         return a.arrival < b.arrival;
                     });

    // Every replica is a component on one event timeline; each arrival is
    // an event that syncs replica clocks to the arrival instant (the
    // lockstep replay's trailing `now = max(now, t)`) and routes the
    // request. The cluster interleaves arrivals and engine steps in
    // global time order, so with migration disabled the per-engine step
    // sequences — and therefore all records and metrics — are
    // bit-identical to the lockstep loop (see test_sim_equivalence).
    sim::Cluster cluster;
    for (auto& e : engines_)
        cluster.add(e.get());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        const RequestSpec& spec = sorted[i];
        cluster.post(spec.arrival, [this, &spec, i] {
            for (auto& e : engines_)
                e->advance_clock_to(spec.arrival);
            submit(spec, static_cast<RequestId>(i));
        });
    }
    if (migration_.enabled)
        cluster.set_progress_hook([this](double t) { rebalance(t); });
    cluster.run();
    for (auto& e : engines_) {
        if (e->has_work()) {
            fatal("cluster replay deadlocked: a replica still holds "
                  "unfinished requests its KV cache cannot admit");
        }
    }
    return merged_metrics();
}

Metrics
Router::merged_metrics() const
{
    // Seed the bin width defensively: an engineless router (possible when
    // a caller moves the engines out or builds the router incrementally)
    // must not index engines_[0].
    if (engines_.empty())
        return Metrics();
    Metrics merged(engines_[0]->metrics().throughput().bin_seconds());
    for (const auto& e : engines_)
        merged.merge(e->metrics());
    return merged;
}

} // namespace shiftpar::engine
