#include "engine/router.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics_registry.h"
#include "sim/cluster.h"
#include "util/logging.h"

namespace shiftpar::engine {

Router::Router(std::vector<std::unique_ptr<Engine>> engines,
               RoutingPolicy policy, MigrationOptions migration)
    : engines_(std::move(engines)), policy_(policy), migration_(migration)
{
    SP_ASSERT(!engines_.empty());
}

void
Router::run_until(double t)
{
    for (auto& e : engines_)
        e->run_until(t);
}

std::size_t
Router::select_replica()
{
    const std::size_t n = engines_.size();
    if (policy_ == RoutingPolicy::kRoundRobin) {
        for (std::size_t k = 0; k < n; ++k) {
            const std::size_t pick = (next_rr_ + k) % n;
            if (!engines_[pick]->failed()) {
                next_rr_ = (pick + 1) % n;
                return pick;
            }
        }
        return n;
    }
    std::size_t best = n;
    std::int64_t best_load = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (engines_[i]->failed())
            continue;
        const std::int64_t load = engines_[i]->outstanding_tokens();
        if (best == n || load < best_load) {
            best = i;
            best_load = load;
        }
    }
    return best;
}

void
Router::publish(obs::EngineId engine, RequestId id, obs::RequestPhase phase,
                double t, std::int64_t tokens) const
{
    if (trace_)
        trace_->publish_request({engine, id, phase, t, tokens});
}

void
Router::submit(const RequestSpec& spec, RequestId id)
{
    const std::size_t pick = select_replica();
    SP_ASSERT(pick < engines_.size(), "submit with every replica failed");
    engines_[pick]->submit(spec, id);
    publish(engines_[pick]->trace_id(), id, obs::RequestPhase::kRouted,
            spec.arrival, spec.prompt_tokens);
}

void
Router::drain()
{
    for (auto& e : engines_)
        e->drain();
}

void
Router::rebalance(double t)
{
    // Failed replicas are invisible to the rebalancer: they can neither
    // donate (their queues were dropped) nor receive work.
    const std::size_t n = engines_.size();
    std::size_t busiest = n, idlest = n;
    std::int64_t max_load = 0, min_load = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (engines_[i]->failed())
            continue;
        const std::int64_t load = engines_[i]->outstanding_tokens();
        if (busiest == n || load > max_load) {
            max_load = load;
            busiest = i;
        }
        if (idlest == n || load < min_load) {
            min_load = load;
            idlest = i;
        }
    }
    if (busiest == n || busiest == idlest)
        return;
    const std::int64_t gap = max_load - min_load;
    if (gap < migration_.min_token_imbalance)
        return;
    // The size cap keeps the move imbalance-shrinking: a straggler bigger
    // than the gap would just flip the roles and ping-pong.
    const auto stolen = engines_[busiest]->steal_waiting(gap);
    if (!stolen)
        return;
    const auto& [spec, id] = *stolen;
    // The move happens at the cluster's current instant: the receiver may
    // not act on the request before `t`, but must not burn the donor's
    // step overshoot as idle time either.
    engines_[idlest]->advance_clock_to(t);
    engines_[idlest]->submit(spec, id, /*migrated_in=*/true);
    ++migrations_;
    if (trace_) {
        trace_->publish_request({engines_[idlest]->trace_id(), id,
                                 obs::RequestPhase::kMigrated, t,
                                 spec.prompt_tokens});
    }
}

void
Router::admit(const RequestSpec& spec, RequestId id, double t)
{
    if (should_shed(t)) {
        ++fault_stats_.shed;
        obs::MetricsRegistry::current().counter_add(
            "shiftpar_fault_requests_total", 1, {{"outcome", "shed"}});
        publish(engines_[0]->trace_id(), id, obs::RequestPhase::kShed, t,
                spec.prompt_tokens);
        return;
    }
    const std::size_t pick = select_replica();
    if (pick == engines_.size()) {
        // Every replica is down: treat the arrival like a dropped request
        // — the client backs off and retries against the outage.
        schedule_retry(spec, id, t);
        return;
    }
    engines_[pick]->submit(spec, id);
    publish(engines_[pick]->trace_id(), id, obs::RequestPhase::kRouted,
            spec.arrival, spec.prompt_tokens);
}

bool
Router::should_shed(double t) const
{
    (void)t;
    if (resilience_.shed_watermark <= 0.0)
        return false;
    int total = 0, alive = 0;
    for (const auto& e : engines_) {
        total += e->num_gpus();
        if (!e->failed())
            alive += e->num_gpus();
    }
    if (alive == 0)
        return false;  // full outage: the retry path owns this arrival
    if (static_cast<double>(alive) >=
        resilience_.shed_watermark * static_cast<double>(total))
        return false;
    if (resilience_.shed_ttft_slo <= 0.0 ||
        resilience_.replica_tokens_per_s <= 0.0)
        return true;  // degraded and no SLO estimate: shed everything
    // SLO-aware guard: admit while the best surviving backlog would still
    // be served within the TTFT budget.
    std::int64_t best_backlog = std::numeric_limits<std::int64_t>::max();
    for (const auto& e : engines_) {
        if (!e->failed())
            best_backlog = std::min(best_backlog, e->outstanding_tokens());
    }
    const double est_wait = static_cast<double>(best_backlog) /
                            resilience_.replica_tokens_per_s;
    return est_wait > resilience_.shed_ttft_slo;
}

void
Router::schedule_retry(const RequestSpec& spec, RequestId id, double t)
{
    SP_ASSERT(active_cluster_ != nullptr,
              "retries only run inside run_workload");
    const int attempt = ++attempts_[id];
    if (attempt > resilience_.max_retries) {
        ++fault_stats_.lost;
        obs::MetricsRegistry::current().counter_add(
            "shiftpar_fault_requests_total", 1, {{"outcome", "lost"}});
        publish(engines_[0]->trace_id(), id, obs::RequestPhase::kLost, t);
        return;
    }
    ++fault_stats_.retries;
    obs::MetricsRegistry::current().counter_add(
        "shiftpar_fault_requests_total", 1, {{"outcome", "retried"}});
    const double delay =
        std::min(resilience_.backoff_base *
                     std::pow(2.0, static_cast<double>(attempt - 1)),
                 resilience_.backoff_cap);
    const double when = t + delay;
    publish(engines_[0]->trace_id(), id, obs::RequestPhase::kRetried, t,
            attempt);
    active_cluster_->post(when, [this, spec, id, when] {
        for (auto& e : engines_)
            e->advance_clock_to(when);
        const std::size_t pick = select_replica();
        if (pick == engines_.size()) {
            schedule_retry(spec, id, when);  // outage persists: back off
            return;
        }
        // The original arrival rides along in `spec`, so the retried
        // request's TTFT includes the outage it sat through.
        engines_[pick]->submit(spec, id);
        publish(engines_[pick]->trace_id(), id, obs::RequestPhase::kRouted,
                when, spec.prompt_tokens);
    });
}

void
Router::on_engine_failure(std::size_t idx, double t)
{
    Engine& victim = *engines_[idx];
    SP_ASSERT(!victim.failed());
    // Straggle/degrade restores aimed at the dead engine are obsolete —
    // fail() resets its multipliers and recovery brings it back healthy.
    for (const sim::EventId ev : pending_restores_[idx])
        active_cluster_->cancel_event(ev);
    pending_restores_[idx].clear();
    ++fault_stats_.failures;
    obs::MetricsRegistry::current().counter_add(
        "shiftpar_fault_transitions_total", 1, {{"kind", "failure"}});
    const auto dropped = victim.fail(t);
    fault_stats_.dropped += static_cast<std::int64_t>(dropped.size());
    if (!dropped.empty()) {
        obs::MetricsRegistry::current().counter_add(
            "shiftpar_fault_requests_total",
            static_cast<std::int64_t>(dropped.size()),
            {{"outcome", "dropped"}});
    }
    for (const auto& [spec, id] : dropped)
        schedule_retry(spec, id, t);
}

void
Router::on_engine_recovery(std::size_t idx, double t)
{
    ++fault_stats_.recoveries;
    obs::MetricsRegistry::current().counter_add(
        "shiftpar_fault_transitions_total", 1, {{"kind", "recovery"}});
    engines_[idx]->recover(t);
}

void
Router::arm_faults(sim::Cluster* cluster)
{
    std::vector<int> gpus;
    gpus.reserve(engines_.size());
    for (const auto& e : engines_)
        gpus.push_back(e->num_gpus());

    for (const fault::FaultEvent& ev : faults_.materialize(gpus)) {
        switch (ev.kind) {
          case fault::FaultKind::kFail:
            cluster->post(ev.at, [this, ev] {
                // Overlapping schedules (an explicit fail inside an MTBF
                // outage): the first failure wins and keeps its recovery;
                // a fail against an already-dead engine is dropped whole,
                // pairing each applied failure with exactly one recovery.
                if (engines_[ev.engine]->failed())
                    return;
                on_engine_failure(static_cast<std::size_t>(ev.engine),
                                  ev.at);
                if (std::isfinite(ev.recover_at)) {
                    active_cluster_->post(ev.recover_at, [this, ev] {
                        on_engine_recovery(
                            static_cast<std::size_t>(ev.engine),
                            ev.recover_at);
                    });
                }
            });
            break;
          case fault::FaultKind::kStraggle:
            cluster->post(ev.at, [this, ev] {
                if (engines_[ev.engine]->failed())
                    return;
                ++fault_stats_.straggles;
                obs::MetricsRegistry::current().counter_add(
                    "shiftpar_fault_transitions_total", 1,
                    {{"kind", "straggle"}});
                engines_[ev.engine]->set_slowdown(ev.factor, ev.at);
                pending_restores_[ev.engine].push_back(
                    active_cluster_->post(ev.recover_at, [this, ev] {
                        engines_[ev.engine]->set_slowdown(1.0,
                                                          ev.recover_at);
                    }));
            });
            break;
          case fault::FaultKind::kDegrade:
            cluster->post(ev.at, [this, ev] {
                ++fault_stats_.degrades;
                obs::MetricsRegistry::current().counter_add(
                    "shiftpar_fault_transitions_total", 1,
                    {{"kind", "degrade"}});
                const std::size_t n = engines_.size();
                for (std::size_t i = 0; i < n; ++i) {
                    if (ev.engine >= 0 &&
                        i != static_cast<std::size_t>(ev.engine))
                        continue;
                    if (engines_[i]->failed())
                        continue;
                    engines_[i]->set_comm_multiplier(ev.factor, ev.at);
                    pending_restores_[i].push_back(
                        active_cluster_->post(ev.recover_at, [this, i,
                                                              ev] {
                            engines_[i]->set_comm_multiplier(
                                1.0, ev.recover_at);
                        }));
                }
            });
            break;
        }
    }
}

Metrics
Router::run_workload(const std::vector<RequestSpec>& workload)
{
    std::vector<RequestSpec> sorted = workload;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const RequestSpec& a, const RequestSpec& b) {
                         return a.arrival < b.arrival;
                     });

    // Every replica is a component on one event timeline; each arrival is
    // an event that syncs replica clocks to the arrival instant (the
    // lockstep replay's trailing `now = max(now, t)`) and routes the
    // request. The cluster interleaves arrivals and engine steps in
    // global time order, so with migration disabled the per-engine step
    // sequences — and therefore all records and metrics — are
    // bit-identical to the lockstep loop (see test_sim_equivalence).
    sim::Cluster cluster;
    cluster.set_profile(profile_);
    active_cluster_ = &cluster;
    fault_stats_ = {};
    attempts_.clear();
    pending_restores_.assign(engines_.size(), {});
    for (auto& e : engines_)
        cluster.add(e.get());
    if (!faults_.empty())
        arm_faults(&cluster);
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        const RequestSpec& spec = sorted[i];
        cluster.post(spec.arrival, [this, &spec, i] {
            for (auto& e : engines_)
                e->advance_clock_to(spec.arrival);
            admit(spec, static_cast<RequestId>(i), spec.arrival);
        });
    }
    if (migration_.enabled)
        cluster.set_progress_hook([this](double t) { rebalance(t); });
    cluster.run();
    active_cluster_ = nullptr;
    for (auto& e : engines_) {
        if (e->has_work()) {
            fatal("cluster replay deadlocked: a replica still holds "
                  "unfinished requests its KV cache cannot admit");
        }
    }
    return merged_metrics();
}

Metrics
Router::merged_metrics() const
{
    // Seed the bin width defensively: an engineless router (possible when
    // a caller moves the engines out or builds the router incrementally)
    // must not index engines_[0].
    if (engines_.empty())
        return Metrics();
    Metrics merged(engines_[0]->metrics().throughput().bin_seconds());
    for (const auto& e : engines_)
        merged.merge(e->metrics());
    return merged;
}

} // namespace shiftpar::engine
