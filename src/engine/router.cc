#include "engine/router.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics_registry.h"
#include "sim/cluster.h"
#include "util/logging.h"

namespace shiftpar::engine {

Router::Router(std::vector<std::unique_ptr<Engine>> engines,
               RoutingPolicy policy, MigrationOptions migration)
    : engines_(std::move(engines)), policy_(policy), migration_(migration)
{
    SP_ASSERT(!engines_.empty());
}

void
Router::run_until(double t)
{
    for (auto& e : engines_)
        e->run_until(t);
}

std::size_t
Router::select_replica()
{
    const std::size_t n = engines_.size();
    // Pass 0 skips draining and breaker-excluded replicas; when that
    // leaves nothing admissible, pass 1 re-admits the breaker-excluded
    // ones — degraded service beats losing the request. Failed and
    // draining replicas stay out in both passes (they cannot accept
    // work). With the overload features off this reduces exactly to the
    // original skip-failed scan.
    for (int pass = 0; pass < 2; ++pass) {
        const auto usable = [&](std::size_t i) {
            if (engines_[i]->failed() || engines_[i]->draining())
                return false;
            return pass == 1 || !breaker_excludes(i);
        };
        if (policy_ == RoutingPolicy::kRoundRobin) {
            for (std::size_t k = 0; k < n; ++k) {
                const std::size_t pick = (next_rr_ + k) % n;
                if (usable(pick)) {
                    next_rr_ = (pick + 1) % n;
                    return pick;
                }
            }
            continue;
        }
        std::size_t best = n;
        std::int64_t best_load = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (!usable(i))
                continue;
            const std::int64_t load = engines_[i]->outstanding_tokens();
            if (best == n || load < best_load) {
                best = i;
                best_load = load;
            }
        }
        if (best < n)
            return best;
    }
    return n;
}

void
Router::publish(obs::EngineId engine, RequestId id, obs::RequestPhase phase,
                double t, std::int64_t tokens) const
{
    if (trace_)
        trace_->publish_request({engine, id, phase, t, tokens});
}

void
Router::submit(const RequestSpec& spec, RequestId id)
{
    const std::size_t pick = select_replica();
    SP_ASSERT(pick < engines_.size(), "submit with every replica failed");
    engines_[pick]->submit(spec, id);
    publish(engines_[pick]->trace_id(), id, obs::RequestPhase::kRouted,
            spec.arrival, spec.prompt_tokens);
}

void
Router::drain()
{
    for (auto& e : engines_)
        e->drain();
}

void
Router::rebalance(double t)
{
    // Failed replicas are invisible to the rebalancer: they can neither
    // donate (their queues were dropped) nor receive work.
    const std::size_t n = engines_.size();
    std::size_t busiest = n, idlest = n;
    std::int64_t max_load = 0, min_load = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (engines_[i]->failed())
            continue;
        const std::int64_t load = engines_[i]->outstanding_tokens();
        if (busiest == n || load > max_load) {
            max_load = load;
            busiest = i;
        }
        if (idlest == n || load < min_load) {
            min_load = load;
            idlest = i;
        }
    }
    if (busiest == n || busiest == idlest)
        return;
    const std::int64_t gap = max_load - min_load;
    if (gap < migration_.min_token_imbalance)
        return;
    // The size cap keeps the move imbalance-shrinking: a straggler bigger
    // than the gap would just flip the roles and ping-pong.
    const auto stolen = engines_[busiest]->steal_waiting(gap);
    if (!stolen)
        return;
    const auto& [spec, id] = *stolen;
    // The move happens at the cluster's current instant: the receiver may
    // not act on the request before `t`, but must not burn the donor's
    // step overshoot as idle time either.
    engines_[idlest]->advance_clock_to(t);
    engines_[idlest]->submit(spec, id, /*migrated_in=*/true);
    ++migrations_;
    if (trace_) {
        trace_->publish_request({engines_[idlest]->trace_id(), id,
                                 obs::RequestPhase::kMigrated, t,
                                 spec.prompt_tokens});
    }
}

void
Router::admit(const RequestSpec& spec, RequestId id, double t)
{
    if (should_shed(t)) {
        ++fault_stats_.shed;
        obs::MetricsRegistry::current().counter_add(
            "shiftpar_fault_requests_total", 1, {{"outcome", "shed"}});
        publish(engines_[0]->trace_id(), id, obs::RequestPhase::kShed, t,
                spec.prompt_tokens);
        if (lifecycle_active_) {
            flights_[static_cast<std::size_t>(id)].outcome =
                FlightOutcome::kShed;
            count_outcome("shed");
        }
        return;
    }
    if (overload_.breaker.enabled)
        update_breakers(t);
    const std::size_t pick = select_replica();
    if (pick == engines_.size()) {
        // Every replica is down: treat the arrival like a dropped request
        // — the client backs off and retries against the outage.
        schedule_retry(spec, id, t);
        return;
    }
    engines_[pick]->submit(spec, id);
    note_submit(pick, id);
    publish(engines_[pick]->trace_id(), id, obs::RequestPhase::kRouted,
            spec.arrival, spec.prompt_tokens);
    if (lifecycle_active_ && overload_.hedge_delay > 0.0 &&
        engines_.size() > 1) {
        const double when = t + overload_.hedge_delay;
        active_cluster_->post(when, [this, spec, id, when] {
            maybe_hedge(spec, id, when);
        });
    }
}

bool
Router::should_shed(double t) const
{
    (void)t;
    if (resilience_.shed_watermark <= 0.0)
        return false;
    int total = 0, alive = 0;
    for (const auto& e : engines_) {
        total += e->num_gpus();
        if (!e->failed())
            alive += e->num_gpus();
    }
    if (alive == 0)
        return false;  // full outage: the retry path owns this arrival
    if (static_cast<double>(alive) >=
        resilience_.shed_watermark * static_cast<double>(total))
        return false;
    if (resilience_.shed_ttft_slo <= 0.0 ||
        resilience_.replica_tokens_per_s <= 0.0)
        return true;  // degraded and no SLO estimate: shed everything
    // SLO-aware guard: admit while the best surviving backlog would still
    // be served within the TTFT budget.
    std::int64_t best_backlog = std::numeric_limits<std::int64_t>::max();
    for (const auto& e : engines_) {
        if (!e->failed())
            best_backlog = std::min(best_backlog, e->outstanding_tokens());
    }
    const double est_wait = static_cast<double>(best_backlog) /
                            resilience_.replica_tokens_per_s;
    return est_wait > resilience_.shed_ttft_slo;
}

void
Router::schedule_retry(const RequestSpec& spec, RequestId id, double t)
{
    SP_ASSERT(active_cluster_ != nullptr,
              "retries only run inside run_workload");
    if (lifecycle_active_) {
        const RequestId logical = logical_request_id(id);
        Flight& f = flights_[static_cast<std::size_t>(logical)];
        const bool clone = is_hedge_clone(id);
        if (clone)
            f.clone_live = false;
        else
            f.primary_live = false;
        clear_breaker_probe(id);
        if (f.outcome != FlightOutcome::kInFlight)
            return;  // settled while this copy was being dropped
        const bool other_lives = clone ? f.primary_live : f.clone_live;
        if (f.hedged && other_lives) {
            // One hedge copy dropped but its sibling lives on: the
            // sibling carries the flight, no retry needed.
            ++overload_stats_.hedge_losses;
            count_outcome("hedge_lost");
            publish(engines_[0]->trace_id(), id,
                    obs::RequestPhase::kHedgeLost, t);
            return;
        }
        // Every copy is gone: the retry targets the logical request.
        id = logical;
    }
    const int attempt = ++attempts_[id];
    if (attempt > resilience_.max_retries) {
        ++fault_stats_.lost;
        obs::MetricsRegistry::current().counter_add(
            "shiftpar_fault_requests_total", 1, {{"outcome", "lost"}});
        publish(engines_[0]->trace_id(), id, obs::RequestPhase::kLost, t);
        if (lifecycle_active_) {
            flights_[static_cast<std::size_t>(id)].outcome =
                FlightOutcome::kLost;
            count_outcome("lost");
        }
        return;
    }
    ++fault_stats_.retries;
    obs::MetricsRegistry::current().counter_add(
        "shiftpar_fault_requests_total", 1, {{"outcome", "retried"}});
    const double delay =
        std::min(resilience_.backoff_base *
                     std::pow(2.0, static_cast<double>(attempt - 1)),
                 resilience_.backoff_cap);
    const double when = t + delay;
    publish(engines_[0]->trace_id(), id, obs::RequestPhase::kRetried, t,
            attempt);
    active_cluster_->post(when, [this, spec, id, when] {
        if (lifecycle_active_ &&
            flights_[static_cast<std::size_t>(id)].outcome !=
                FlightOutcome::kInFlight)
            return;  // cancelled/expired while waiting out the backoff
        for (auto& e : engines_)
            e->advance_clock_to(when);
        if (overload_.breaker.enabled)
            update_breakers(when);
        const std::size_t pick = select_replica();
        if (pick == engines_.size()) {
            schedule_retry(spec, id, when);  // outage persists: back off
            return;
        }
        // The original arrival rides along in `spec`, so the retried
        // request's TTFT includes the outage it sat through.
        engines_[pick]->submit(spec, id);
        note_submit(pick, id);
        publish(engines_[pick]->trace_id(), id, obs::RequestPhase::kRouted,
                when, spec.prompt_tokens);
    });
}

void
Router::on_engine_failure(std::size_t idx, double t)
{
    Engine& victim = *engines_[idx];
    SP_ASSERT(!victim.failed());
    // Straggle/degrade restores aimed at the dead engine are obsolete —
    // fail() resets its multipliers and recovery brings it back healthy.
    for (const sim::EventId ev : pending_restores_[idx])
        active_cluster_->cancel_event(ev);
    pending_restores_[idx].clear();
    // The breaker's history died with the replica: recovery starts it
    // closed with fresh statistics (a cold rejoin is not a straggler).
    if (!breakers_.empty())
        breakers_[idx] = {};
    ++fault_stats_.failures;
    obs::MetricsRegistry::current().counter_add(
        "shiftpar_fault_transitions_total", 1, {{"kind", "failure"}});
    const auto dropped = victim.fail(t);
    fault_stats_.dropped += static_cast<std::int64_t>(dropped.size());
    if (!dropped.empty()) {
        obs::MetricsRegistry::current().counter_add(
            "shiftpar_fault_requests_total",
            static_cast<std::int64_t>(dropped.size()),
            {{"outcome", "dropped"}});
    }
    for (const auto& [spec, id] : dropped)
        schedule_retry(spec, id, t);
}

void
Router::on_engine_recovery(std::size_t idx, double t)
{
    ++fault_stats_.recoveries;
    obs::MetricsRegistry::current().counter_add(
        "shiftpar_fault_transitions_total", 1, {{"kind", "recovery"}});
    engines_[idx]->recover(t);
}

void
Router::arm_faults(sim::Cluster* cluster)
{
    std::vector<int> gpus;
    gpus.reserve(engines_.size());
    for (const auto& e : engines_)
        gpus.push_back(e->num_gpus());

    for (const fault::FaultEvent& ev : faults_.materialize(gpus)) {
        switch (ev.kind) {
          case fault::FaultKind::kFail:
            cluster->post(ev.at, [this, ev] {
                // Overlapping schedules (an explicit fail inside an MTBF
                // outage): the first failure wins and keeps its recovery;
                // a fail against an already-dead engine is dropped whole,
                // pairing each applied failure with exactly one recovery.
                if (engines_[ev.engine]->failed())
                    return;
                on_engine_failure(static_cast<std::size_t>(ev.engine),
                                  ev.at);
                if (std::isfinite(ev.recover_at)) {
                    active_cluster_->post(ev.recover_at, [this, ev] {
                        on_engine_recovery(
                            static_cast<std::size_t>(ev.engine),
                            ev.recover_at);
                    });
                }
            });
            break;
          case fault::FaultKind::kStraggle:
            cluster->post(ev.at, [this, ev] {
                if (engines_[ev.engine]->failed())
                    return;
                ++fault_stats_.straggles;
                obs::MetricsRegistry::current().counter_add(
                    "shiftpar_fault_transitions_total", 1,
                    {{"kind", "straggle"}});
                engines_[ev.engine]->set_slowdown(ev.factor, ev.at);
                pending_restores_[ev.engine].push_back(
                    active_cluster_->post(ev.recover_at, [this, ev] {
                        engines_[ev.engine]->set_slowdown(1.0,
                                                          ev.recover_at);
                    }));
            });
            break;
          case fault::FaultKind::kDrain:
            cluster->post(ev.at, [this, ev] {
                const auto idx = static_cast<std::size_t>(ev.engine);
                if (engines_[idx]->failed() || engines_[idx]->draining())
                    return;
                ++overload_stats_.drains;
                obs::MetricsRegistry::current().counter_add(
                    "shiftpar_fault_transitions_total", 1,
                    {{"kind", "drain"}});
                const auto handed = engines_[idx]->start_drain(ev.at);
                overload_stats_.drained +=
                    static_cast<std::int64_t>(handed.size());
                for (const auto& [spec, id] : handed) {
                    // Each handed-back request re-routes like a migration:
                    // it keeps its id and arrival, so its TTFT accrues
                    // the detour.
                    const std::size_t pick = select_replica();
                    if (pick == engines_.size()) {
                        schedule_retry(spec, id, ev.at);
                        continue;
                    }
                    engines_[pick]->advance_clock_to(ev.at);
                    engines_[pick]->submit(spec, id, /*migrated_in=*/true);
                    note_submit(pick, id);
                    publish(engines_[pick]->trace_id(), id,
                            obs::RequestPhase::kDrained, ev.at);
                    publish(engines_[pick]->trace_id(), id,
                            obs::RequestPhase::kRouted, ev.at,
                            spec.prompt_tokens);
                }
                if (std::isfinite(ev.recover_at)) {
                    const auto resume_at = ev.recover_at;
                    active_cluster_->post(resume_at, [this, idx,
                                                      resume_at] {
                        // A fail-stop may have ended the drain first.
                        if (!engines_[idx]->draining())
                            return;
                        ++overload_stats_.drain_resumes;
                        engines_[idx]->resume_admission(resume_at);
                    });
                }
            });
            break;
          case fault::FaultKind::kDegrade:
            cluster->post(ev.at, [this, ev] {
                ++fault_stats_.degrades;
                obs::MetricsRegistry::current().counter_add(
                    "shiftpar_fault_transitions_total", 1,
                    {{"kind", "degrade"}});
                const std::size_t n = engines_.size();
                for (std::size_t i = 0; i < n; ++i) {
                    if (ev.engine >= 0 &&
                        i != static_cast<std::size_t>(ev.engine))
                        continue;
                    if (engines_[i]->failed())
                        continue;
                    engines_[i]->set_comm_multiplier(ev.factor, ev.at);
                    pending_restores_[i].push_back(
                        active_cluster_->post(ev.recover_at, [this, i,
                                                              ev] {
                            engines_[i]->set_comm_multiplier(
                                1.0, ev.recover_at);
                        }));
                }
            });
            break;
        }
    }
}

Metrics
Router::run_workload(const std::vector<RequestSpec>& workload)
{
    std::vector<RequestSpec> sorted = workload;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const RequestSpec& a, const RequestSpec& b) {
                         return a.arrival < b.arrival;
                     });

    // Every replica is a component on one event timeline; each arrival is
    // an event that syncs replica clocks to the arrival instant (the
    // lockstep replay's trailing `now = max(now, t)`) and routes the
    // request. The cluster interleaves arrivals and engine steps in
    // global time order, so with migration disabled the per-engine step
    // sequences — and therefore all records and metrics — are
    // bit-identical to the lockstep loop (see test_sim_equivalence).
    sim::Cluster cluster;
    cluster.set_profile(profile_);
    active_cluster_ = &cluster;
    fault_stats_ = {};
    attempts_.clear();
    pending_restores_.assign(engines_.size(), {});

    // Lifecycle tracking turns on only when a feature needs it (any
    // deadline in the workload, a cancel stream, hedging, or breakers);
    // otherwise the replay takes the exact seed code path — no hooks, no
    // flight table, bit-identical results.
    bool any_deadline = false;
    for (const RequestSpec& s : sorted) {
        if (s.deadline > 0.0) {
            any_deadline = true;
            break;
        }
    }
    lifecycle_active_ = overload_.any() || !cancels_.empty() || any_deadline;
    overload_stats_ = {};
    flights_.clear();
    breakers_.clear();
    if (lifecycle_active_) {
        flights_.assign(sorted.size(), {});
        if (overload_.breaker.enabled)
            breakers_.assign(engines_.size(), {});
        for (std::size_t i = 0; i < engines_.size(); ++i) {
            engines_[i]->set_on_finish([this, i](const Request& r) {
                return on_lifecycle_finish(i, r);
            });
            engines_[i]->set_on_expire([this, i](RequestId id, double t) {
                settle_expired(i, id, t);
            });
        }
    }

    for (auto& e : engines_)
        cluster.add(e.get());
    if (!faults_.empty())
        arm_faults(&cluster);
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        const RequestSpec& spec = sorted[i];
        cluster.post(spec.arrival, [this, &spec, i] {
            for (auto& e : engines_)
                e->advance_clock_to(spec.arrival);
            admit(spec, static_cast<RequestId>(i), spec.arrival);
        });
    }
    // Cancels are posted after arrivals so an abort at exactly the
    // arrival instant fires after the request was admitted (equal-time
    // events run in posting order).
    for (const CancelEvent& c : cancels_) {
        SP_ASSERT(c.index >= 0 &&
                      c.index < static_cast<std::int64_t>(sorted.size()),
                  "cancel stream addresses a request outside the workload");
        cluster.post(c.at, [this, c] {
            do_cancel(static_cast<RequestId>(c.index), c.at);
        });
    }
    if (migration_.enabled)
        cluster.set_progress_hook([this](double t) { rebalance(t); });
    cluster.run();
    active_cluster_ = nullptr;
    for (auto& e : engines_) {
        if (e->has_work()) {
            fatal("cluster replay deadlocked: a replica still holds "
                  "unfinished requests its KV cache cannot admit");
        }
    }
    if (lifecycle_active_) {
        for (auto& e : engines_) {
            e->set_on_finish(nullptr);
            e->set_on_expire(nullptr);
        }
        assert_conservation(sorted.size());
    }
    return merged_metrics();
}

void
Router::note_submit(std::size_t pick, RequestId id)
{
    if (!lifecycle_active_)
        return;
    Flight& f =
        flights_[static_cast<std::size_t>(logical_request_id(id))];
    if (is_hedge_clone(id))
        f.clone_live = true;
    else
        f.primary_live = true;
    if (!breakers_.empty()) {
        Breaker& b = breakers_[pick];
        if (b.state == Breaker::State::kHalfOpen && b.probe < 0) {
            b.probe = id;
            ++overload_stats_.breaker_probes;
        }
    }
}

void
Router::count_outcome(const char* outcome, std::int64_t n) const
{
    obs::MetricsRegistry::current().counter_add(
        "shiftpar_request_outcome_total", n, {{"outcome", outcome}});
}

bool
Router::on_lifecycle_finish(std::size_t idx, const Request& r)
{
    const RequestId logical = logical_request_id(r.id);
    const bool clone = is_hedge_clone(r.id);
    Flight& f = flights_[static_cast<std::size_t>(logical)];
    if (!breakers_.empty())
        record_breaker_sample(idx, r);
    if (clone)
        f.clone_live = false;
    else
        f.primary_live = false;
    clear_breaker_probe(r.id);
    if (f.outcome != FlightOutcome::kInFlight) {
        // The sibling hedge copy already completed and this finish raced
        // the loser-cancel event: resolve the loss here instead, and
        // suppress the metrics record — the logical request already
        // reported through the winner.
        if (f.outcome == FlightOutcome::kCompleted && f.hedged) {
            ++overload_stats_.hedge_losses;
            count_outcome("hedge_lost");
            publish(engines_[idx]->trace_id(), r.id,
                    obs::RequestPhase::kHedgeLost, r.finished);
        }
        return false;
    }
    f.outcome = FlightOutcome::kCompleted;
    ++overload_stats_.completed;
    count_outcome("completed");
    if (f.hedged) {
        ++overload_stats_.hedge_wins;
        count_outcome("hedge_won");
        publish(engines_[idx]->trace_id(), logical,
                obs::RequestPhase::kHedgeWon, r.finished);
        const RequestId loser =
            clone ? logical : logical + kHedgeIdOffset;
        const bool loser_live = clone ? f.primary_live : f.clone_live;
        if (loser_live) {
            // The loser is cancelled by an event, not inline: this hook
            // runs inside the winner engine's step, and yanking a
            // request out of another engine mid-interleave would race
            // its in-progress iteration.
            const double when = r.finished;
            active_cluster_->post(when, [this, logical, loser, when] {
                resolve_hedge_loser(logical, loser, when);
            });
        }
    }
    return true;
}

void
Router::settle_expired(std::size_t idx, RequestId id, double t)
{
    (void)idx;
    const RequestId logical = logical_request_id(id);
    Flight& f = flights_[static_cast<std::size_t>(logical)];
    if (is_hedge_clone(id))
        f.clone_live = false;
    else
        f.primary_live = false;
    clear_breaker_probe(id);
    if (f.outcome != FlightOutcome::kInFlight)
        return;
    if (f.primary_live || f.clone_live)
        return;  // the other hedge copy is still in flight
    f.outcome = FlightOutcome::kExpired;
    ++overload_stats_.expired;
    count_outcome("expired");
    (void)t;
}

void
Router::do_cancel(RequestId id, double t)
{
    Flight& f = flights_[static_cast<std::size_t>(id)];
    if (f.outcome != FlightOutcome::kInFlight)
        return;  // finished/expired/lost/shed before the abort arrived
    for (auto& e : engines_)
        e->advance_clock_to(t);
    bool closed = false;
    for (auto& e : engines_) {
        if (e->cancel(id)) {
            closed = true;
            break;
        }
    }
    if (f.clone_live) {
        for (auto& e : engines_) {
            if (e->cancel(id + kHedgeIdOffset))
                break;
        }
        f.clone_live = false;
    }
    if (!closed) {
        // Retry limbo: the request is on no engine right now (dropped by
        // a failure, waiting out its backoff). The pending retry closure
        // checks the flight outcome and stands down; close the trace
        // span from the router.
        publish(engines_[0]->trace_id(), id, obs::RequestPhase::kCancel,
                t);
    }
    f.primary_live = false;
    f.outcome = FlightOutcome::kCancelled;
    ++overload_stats_.cancelled;
    count_outcome("cancelled");
    clear_breaker_probe(id);
    clear_breaker_probe(id + kHedgeIdOffset);
}

void
Router::maybe_hedge(const RequestSpec& spec, RequestId id, double when)
{
    Flight& f = flights_[static_cast<std::size_t>(id)];
    if (f.outcome != FlightOutcome::kInFlight || f.hedged ||
        !f.primary_live)
        return;
    // Hedge only while the primary has zero sunk work: once a chunk was
    // scheduled, duplicating it would burn two replicas' compute on one
    // answer.
    std::size_t holder = engines_.size();
    for (std::size_t i = 0; i < engines_.size(); ++i) {
        if (engines_[i]->queued_unscheduled(id)) {
            holder = i;
            break;
        }
    }
    if (holder == engines_.size())
        return;  // already scheduled (or in retry limbo): too late
    if (overload_.breaker.enabled)
        update_breakers(when);
    // Least-loaded other replica that can take the clone.
    std::size_t target = engines_.size();
    std::int64_t best_load = 0;
    for (std::size_t i = 0; i < engines_.size(); ++i) {
        if (i == holder || engines_[i]->failed() ||
            engines_[i]->draining() || breaker_excludes(i))
            continue;
        const std::int64_t load = engines_[i]->outstanding_tokens();
        if (target == engines_.size() || load < best_load) {
            target = i;
            best_load = load;
        }
    }
    if (target == engines_.size())
        return;
    for (auto& e : engines_)
        e->advance_clock_to(when);
    f.hedged = true;
    ++overload_stats_.hedges;
    count_outcome("hedged");
    publish(engines_[holder]->trace_id(), id, obs::RequestPhase::kHedged,
            when);
    const RequestId clone_id = id + kHedgeIdOffset;
    // The clone keeps the original spec (arrival included), so whichever
    // copy wins reports an honest TTFT.
    engines_[target]->submit(spec, clone_id);
    note_submit(target, clone_id);
    publish(engines_[target]->trace_id(), clone_id,
            obs::RequestPhase::kRouted, when, spec.prompt_tokens);
}

void
Router::resolve_hedge_loser(RequestId logical, RequestId loser,
                            double when)
{
    Flight& f = flights_[static_cast<std::size_t>(logical)];
    const bool clone = is_hedge_clone(loser);
    if (!(clone ? f.clone_live : f.primary_live))
        return;  // resolved in the meantime (raced finish or a drop)
    for (auto& e : engines_)
        e->advance_clock_to(when);
    // Marker first so it lands inside the loser's still-open span; the
    // engine-side cancel then closes the span.
    publish(engines_[0]->trace_id(), loser, obs::RequestPhase::kHedgeLost,
            when);
    for (auto& e : engines_) {
        if (e->cancel(loser))
            break;
    }
    if (clone)
        f.clone_live = false;
    else
        f.primary_live = false;
    ++overload_stats_.hedge_losses;
    count_outcome("hedge_lost");
    clear_breaker_probe(loser);
}

double
Router::best_other_ewma(std::size_t idx) const
{
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < breakers_.size(); ++j) {
        if (j == idx || engines_[j]->failed())
            continue;
        if (breakers_[j].samples < overload_.breaker.min_samples)
            continue;
        best = std::min(best, breakers_[j].ewma);
    }
    return best;
}

void
Router::record_breaker_sample(std::size_t idx, const Request& r)
{
    Breaker& b = breakers_[idx];
    const auto tokens = static_cast<double>(
        std::max<std::int64_t>(1, r.spec.prompt_tokens +
                                      r.spec.output_tokens));
    // Per-token service latency (first schedule -> finish): queueing
    // time is excluded so a deep queue alone does not read as sickness,
    // but a straggling replica's slowdown shows up directly.
    const double sample = (r.finished - r.first_scheduled) / tokens;
    const double alpha = overload_.breaker.ewma_alpha;
    b.ewma = b.samples == 0 ? sample
                            : alpha * sample + (1.0 - alpha) * b.ewma;
    ++b.samples;
    const double t = r.finished;
    if (b.state == Breaker::State::kClosed) {
        if (b.samples < overload_.breaker.min_samples)
            return;
        const double best = best_other_ewma(idx);
        if (std::isfinite(best) &&
            b.ewma > overload_.breaker.trip_ratio * best) {
            b.state = Breaker::State::kOpen;
            b.reopen_at = t + overload_.breaker.open_duration;
            ++overload_stats_.breaker_opens;
            publish_breaker(idx, obs::FaultKind::kBreakerOpen, t,
                            b.ewma / best);
        }
    } else if (b.state == Breaker::State::kHalfOpen && r.id == b.probe) {
        b.probe = -1;
        const double best = best_other_ewma(idx);
        if (std::isfinite(best) &&
            b.ewma > overload_.breaker.trip_ratio * best) {
            b.state = Breaker::State::kOpen;
            b.reopen_at = t + overload_.breaker.open_duration;
            ++overload_stats_.breaker_opens;
            publish_breaker(idx, obs::FaultKind::kBreakerOpen, t,
                            b.ewma / best);
        } else {
            b.state = Breaker::State::kClosed;
            ++overload_stats_.breaker_closes;
            publish_breaker(idx, obs::FaultKind::kBreakerClose, t);
        }
    }
}

void
Router::update_breakers(double t)
{
    for (std::size_t i = 0; i < breakers_.size(); ++i) {
        Breaker& b = breakers_[i];
        if (b.state == Breaker::State::kOpen && t >= b.reopen_at) {
            b.state = Breaker::State::kHalfOpen;
            b.probe = -1;
            publish_breaker(i, obs::FaultKind::kBreakerHalfOpen, t);
        }
    }
}

bool
Router::breaker_excludes(std::size_t i) const
{
    if (breakers_.empty())
        return false;
    const Breaker& b = breakers_[i];
    if (b.state == Breaker::State::kOpen)
        return true;
    // Half-open admits exactly one probe at a time.
    return b.state == Breaker::State::kHalfOpen && b.probe >= 0;
}

void
Router::publish_breaker(std::size_t idx, obs::FaultKind kind, double t,
                        double magnitude) const
{
    if (!trace_)
        return;
    obs::FaultEvent ev;
    ev.engine = engines_[idx]->trace_id();
    ev.kind = kind;
    ev.t = t;
    ev.magnitude = magnitude;
    trace_->on_fault(ev);
}

void
Router::clear_breaker_probe(RequestId id)
{
    for (Breaker& b : breakers_) {
        if (b.probe == id)
            b.probe = -1;
    }
}

void
Router::assert_conservation(std::size_t submitted) const
{
    std::int64_t settled = 0;
    for (const Flight& f : flights_)
        settled += f.outcome != FlightOutcome::kInFlight ? 1 : 0;
    SP_ASSERT(settled == static_cast<std::int64_t>(submitted),
              "unsettled request flights after replay");
    const std::int64_t accounted =
        overload_stats_.completed + overload_stats_.expired +
        overload_stats_.cancelled + fault_stats_.lost + fault_stats_.shed;
    SP_ASSERT(accounted == static_cast<std::int64_t>(submitted),
              "request conservation violated: submitted != completed + "
              "lost + shed + expired + cancelled");
}

Metrics
Router::merged_metrics() const
{
    // Seed the bin width defensively: an engineless router (possible when
    // a caller moves the engines out or builds the router incrementally)
    // must not index engines_[0].
    if (engines_.empty())
        return Metrics();
    Metrics merged(engines_[0]->metrics().throughput().bin_seconds());
    for (const auto& e : engines_)
        merged.merge(e->metrics());
    return merged;
}

} // namespace shiftpar::engine
