#include "engine/router.h"

#include <algorithm>

#include "util/logging.h"

namespace shiftpar::engine {

Router::Router(std::vector<std::unique_ptr<Engine>> engines,
               RoutingPolicy policy)
    : engines_(std::move(engines)), policy_(policy)
{
    SP_ASSERT(!engines_.empty());
}

void
Router::run_until(double t)
{
    for (auto& e : engines_)
        e->run_until(t);
}

std::size_t
Router::select_replica()
{
    if (engines_.size() == 1)
        return 0;
    if (policy_ == RoutingPolicy::kRoundRobin) {
        const std::size_t pick = next_rr_;
        next_rr_ = (next_rr_ + 1) % engines_.size();
        return pick;
    }
    std::size_t best = 0;
    std::int64_t best_load = engines_[0]->outstanding_tokens();
    for (std::size_t i = 1; i < engines_.size(); ++i) {
        const std::int64_t load = engines_[i]->outstanding_tokens();
        if (load < best_load) {
            best = i;
            best_load = load;
        }
    }
    return best;
}

void
Router::submit(const RequestSpec& spec, RequestId id)
{
    const std::size_t pick = select_replica();
    engines_[pick]->submit(spec, id);
    if (trace_) {
        trace_->on_request({engines_[pick]->trace_id(), id,
                            obs::RequestPhase::kRouted, spec.arrival,
                            spec.prompt_tokens});
    }
}

void
Router::drain()
{
    for (auto& e : engines_)
        e->drain();
}

Metrics
Router::run_workload(const std::vector<RequestSpec>& workload)
{
    std::vector<RequestSpec> sorted = workload;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const RequestSpec& a, const RequestSpec& b) {
                         return a.arrival < b.arrival;
                     });
    RequestId id = 0;
    for (const auto& spec : sorted) {
        run_until(spec.arrival);
        submit(spec, id++);
    }
    drain();
    return merged_metrics();
}

Metrics
Router::merged_metrics() const
{
    // Seed the bin width defensively: an engineless router (possible when
    // a caller moves the engines out or builds the router incrementally)
    // must not index engines_[0].
    if (engines_.empty())
        return Metrics();
    Metrics merged(engines_[0]->metrics().throughput().bin_seconds());
    for (const auto& e : engines_)
        merged.merge(e->metrics());
    return merged;
}

} // namespace shiftpar::engine
