/**
 * @file
 * Experiment telemetry: per-request records, per-step traces, aggregates.
 *
 * Collected once per engine; `Metrics::merge` combines replicas for DP
 * deployments. Everything the paper reports is derived here: TTFT / TPOT /
 * completion distributions (Figs. 9-11), time-binned combined throughput
 * and its peak (Table 5, Fig. 7), and cost-component totals (Fig. 15).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "engine/request.h"
#include "parallel/config.h"
#include "parallel/perf_model.h"
#include "util/histogram.h"
#include "util/stats.h"

namespace shiftpar::engine {

/** Final record of one completed request. */
struct RequestRecord
{
    RequestId id = 0;
    double arrival = 0.0;
    std::int64_t prompt_tokens = 0;
    std::int64_t output_tokens = 0;
    double ttft = 0.0;
    double tpot = 0.0;
    double completion = 0.0;
    /** Queueing delay: first scheduling minus arrival. */
    double wait = 0.0;
    int preemptions = 0;
};

/** Record of one engine iteration. */
struct StepRecord
{
    double start = 0.0;
    double end = 0.0;
    std::int64_t batched_tokens = 0;  ///< Alg. 2 decision input
    std::int64_t num_seqs = 0;
    parallel::ParallelConfig cfg;     ///< configuration executed
    parallel::StepTiming timing;
};

/** Service-level objective on per-request latencies. */
struct SloSpec
{
    /** Maximum acceptable TTFT, seconds. */
    double ttft = 2.0;

    /** Maximum acceptable TPOT, seconds. */
    double tpot = 0.05;
};

/** Aggregated results of one run. */
class Metrics
{
  public:
    /** @param throughput_bin Width of throughput time bins, seconds. */
    explicit Metrics(double throughput_bin = 1.0);

    /** Record a finished request. */
    void on_request_finished(const Request& r);

    /** Record an externally assembled request result (e.g. a request that
     *  spanned multiple engines in a disaggregated deployment). */
    void add_record(const RequestRecord& rec);

    /** Record one engine step (also feeds the throughput timeline). */
    void on_step(const StepRecord& step);

    /** Fold another engine's metrics into this one (DP merge). */
    void merge(const Metrics& other);

    /** @return per-request records, in completion order. */
    const std::vector<RequestRecord>& requests() const { return requests_; }

    /** @return per-step records, in time order (per engine). */
    const std::vector<StepRecord>& steps() const { return steps_; }

    /**
     * TTFT distribution, seconds. Latency distributions are streaming
     * log-bucketed histograms: constant memory per engine with quantiles
     * exact to within 0.5% relative error (moments are exact).
     */
    const util::Histogram& ttft() const { return ttft_; }

    /** TPOT distribution, seconds. */
    const util::Histogram& tpot() const { return tpot_; }

    /** Completion-time distribution, seconds. */
    const util::Histogram& completion() const { return completion_; }

    /** Queueing-delay distribution, seconds. */
    const util::Histogram& wait() const { return wait_; }

    /** Combined (prompt+output) token throughput timeline, tokens/s. */
    const TimeSeries& throughput() const { return throughput_; }

    /** @return total tokens processed (prompt + output). */
    std::int64_t total_tokens() const { return total_tokens_; }

    /** @return latest step end time across merged engines, seconds. */
    double end_time() const { return end_time_; }

    /** @return mean combined throughput over [0, end_time], tokens/s. */
    double mean_throughput() const;

    /**
     * Fraction of requests meeting both SLO bounds (DistServe-style
     * goodput numerator); 0 when no requests finished.
     */
    double slo_attainment(const SloSpec& slo) const;

    /**
     * Goodput: combined token throughput counting only SLO-satisfying
     * requests' tokens, tokens/s.
     */
    double goodput(const SloSpec& slo) const;

    /** @return sum of per-step cost components across all steps. */
    const parallel::StepTiming& component_totals() const
    {
        return component_totals_;
    }

    /** @return number of steps executed with SP > 1 (base config). */
    std::int64_t sp_steps() const { return sp_steps_; }

    /** @return number of steps executed with SP == 1 (full TP / shift). */
    std::int64_t tp_steps() const { return tp_steps_; }

  private:
    std::vector<RequestRecord> requests_;
    std::vector<StepRecord> steps_;
    util::Histogram ttft_;
    util::Histogram tpot_;
    util::Histogram completion_;
    util::Histogram wait_;
    TimeSeries throughput_;
    parallel::StepTiming component_totals_;
    std::int64_t total_tokens_ = 0;
    std::int64_t sp_steps_ = 0;
    std::int64_t tp_steps_ = 0;
    double end_time_ = 0.0;
};

} // namespace shiftpar::engine
