/**
 * @file
 * The four evaluation models from Table 4 of the paper, all FP8-quantized.
 *
 * | Model          | Params    | Layers | Hidden | Q heads | KV heads |
 * |----------------|-----------|--------|--------|---------|----------|
 * | Llama-70B      | 70B       | 80     | 8192   | 64      | 8        |
 * | Qwen-32B       | 32B       | 64     | 5120   | 64      | 8        |
 * | Llama-17B-16E  | 109B/17B  | 48     | 5120   | 40      | 8        |
 * | Qwen-30B-A3B   | 30B/3B    | 48     | 2048   | 32      | 4        |
 */

#pragma once

#include <vector>

#include "model/model_config.h"

namespace shiftpar::model {

/** Llama-3.3-70B-Instruct (dense). */
ModelConfig llama_70b();

/** Qwen3-32B (dense). */
ModelConfig qwen_32b();

/** Llama-4-Scout-style 16-expert MoE: 109B total / 17B active. */
ModelConfig llama_17b_16e();

/** Qwen3-30B-A3B MoE: 30B total / 3B active, only 4 KV heads. */
ModelConfig qwen_30b_a3b();

/** All four Table 4 models in presentation order (dense first). */
std::vector<ModelConfig> table4_models();

} // namespace shiftpar::model
