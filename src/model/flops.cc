#include "model/flops.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace shiftpar::model {

double
qkv_flops(const ModelConfig& m, double n)
{
    const double out_dim = (m.q_heads + 2.0 * m.kv_heads) * m.head_dim;
    return 2.0 * n * m.hidden_size * out_dim;
}

double
o_flops(const ModelConfig& m, double n)
{
    return 2.0 * n * m.q_heads * m.head_dim * m.hidden_size;
}

double
mlp_flops(const ModelConfig& m, double n)
{
    return 2.0 * n * m.mlp_active_params_per_layer();
}

double
layer_gemm_flops(const ModelConfig& m, double n)
{
    return qkv_flops(m, n) + o_flops(m, n) + mlp_flops(m, n);
}

double
lm_head_flops(const ModelConfig& m, double n)
{
    return 2.0 * n * m.hidden_size * m.vocab_size;
}

double
attn_flops(const ModelConfig& m, double new_tokens, double past)
{
    SP_ASSERT(new_tokens >= 0.0 && past >= 0.0);
    // Sum over i in [0, n) of (past + i + 1) attended keys:
    //   n*past + n(n+1)/2.
    const double attended =
        new_tokens * past + new_tokens * (new_tokens + 1.0) / 2.0;
    // QK^T and PV each cost 2*d_h FLOPs per (query head, key) pair.
    return 4.0 * m.q_heads * m.head_dim * attended;
}

double
kv_read_bytes(const ModelConfig& m, double new_tokens, double past)
{
    SP_ASSERT(new_tokens >= 0.0 && past >= 0.0);
    // One streaming pass over the attended context per chunk. The chunk's
    // own keys are read from registers/SMEM as they are produced; charge
    // the cached `past` region plus half the chunk (average causal reach).
    const double tokens_read = past + new_tokens / 2.0;
    return tokens_read * m.kv_bytes_per_token_layer();
}

double
kv_write_bytes(const ModelConfig& m, double new_tokens)
{
    return new_tokens * m.kv_bytes_per_token_layer();
}

double
layer_dense_weight_bytes(const ModelConfig& m)
{
    const double b = dtype_bytes(m.weight_dtype);
    if (!m.is_moe())
        return (m.attn_params_per_layer() + m.mlp_params_per_layer()) * b;
    const double router =
        static_cast<double>(m.hidden_size) * m.num_experts * b;
    return m.attn_params_per_layer() * b + router;
}

double
layer_expert_read_bytes(const ModelConfig& m, double batch_tokens)
{
    if (!m.is_moe())
        return 0.0;
    const double b = dtype_bytes(m.weight_dtype);
    const double per_expert =
        3.0 * static_cast<double>(m.hidden_size) * m.intermediate_size * b;
    // Expected distinct experts touched under uniform routing of
    // batch_tokens * active_experts slots across num_experts experts.
    const double slots = batch_tokens * m.active_experts;
    const double frac =
        1.0 - std::pow(1.0 - 1.0 / m.num_experts, slots);
    const double experts_touched = m.num_experts * std::min(1.0, frac);
    return experts_touched * per_expert;
}

double
layer_weight_read_bytes(const ModelConfig& m, double batch_tokens)
{
    return layer_dense_weight_bytes(m) +
           layer_expert_read_bytes(m, batch_tokens);
}

double
layer_activation_bytes(const ModelConfig& m, double n)
{
    // Rough per-layer activation traffic: read+write of the hidden stream
    // around each of the four GEMM regions, at BF16 activation width.
    return 8.0 * n * m.hidden_size * dtype_bytes(DType::kBf16);
}

} // namespace shiftpar::model
