#include "model/model_config.h"

#include "util/logging.h"

namespace shiftpar::model {

double
ModelConfig::attn_params_per_layer() const
{
    // QKV projection: d x (h + 2*h_kv)*d_h, O projection: h*d_h x d.
    const double qkv = static_cast<double>(hidden_size) *
                       (q_heads + 2.0 * kv_heads) * head_dim;
    const double o = static_cast<double>(q_heads) * head_dim * hidden_size;
    return qkv + o;
}

double
ModelConfig::mlp_params_per_layer() const
{
    // SwiGLU MLP: gate + up + down = 3 * d * d'.
    const double per_expert =
        3.0 * static_cast<double>(hidden_size) * intermediate_size;
    if (!is_moe())
        return per_expert;
    const double router = static_cast<double>(hidden_size) * num_experts;
    return per_expert * num_experts + router;
}

double
ModelConfig::mlp_active_params_per_layer() const
{
    const double per_expert =
        3.0 * static_cast<double>(hidden_size) * intermediate_size;
    if (!is_moe())
        return per_expert;
    const double router = static_cast<double>(hidden_size) * num_experts;
    return per_expert * active_experts + router;
}

double
ModelConfig::embedding_params() const
{
    // Untied input embedding + LM head.
    return 2.0 * static_cast<double>(vocab_size) * hidden_size;
}

double
ModelConfig::total_params() const
{
    if (params_total_override > 0.0)
        return params_total_override;
    return num_layers * (attn_params_per_layer() + mlp_params_per_layer()) +
           embedding_params();
}

double
ModelConfig::active_params() const
{
    if (params_active_override > 0.0)
        return params_active_override;
    if (!is_moe())
        return total_params();
    return num_layers *
               (attn_params_per_layer() + mlp_active_params_per_layer()) +
           embedding_params();
}

double
ModelConfig::weight_bytes() const
{
    return total_params() * dtype_bytes(weight_dtype);
}

double
ModelConfig::expert_weight_fraction() const
{
    if (!is_moe())
        return 0.0;
    // Computed from the analytic structure so the split stays meaningful
    // even when headline totals are pinned by an override.
    const double per_expert =
        3.0 * static_cast<double>(hidden_size) * intermediate_size;
    const double experts = num_layers * per_expert * num_experts;
    const double analytic_total =
        num_layers * (attn_params_per_layer() + mlp_params_per_layer()) +
        embedding_params();
    return experts / analytic_total;
}

double
ModelConfig::kv_bytes_per_token_layer() const
{
    return kv_heads * kv_head_bytes_per_token(head_dim, kv_dtype);
}

double
ModelConfig::kv_bytes_per_token() const
{
    return kv_bytes_per_token_layer() * num_layers;
}

void
ModelConfig::validate() const
{
    if (num_layers <= 0 || hidden_size <= 0 || q_heads <= 0 ||
        kv_heads <= 0 || head_dim <= 0 || intermediate_size <= 0 ||
        vocab_size <= 0) {
        fatal("ModelConfig '" + name + "': all structural sizes must be > 0");
    }
    if (q_heads % kv_heads != 0) {
        fatal("ModelConfig '" + name +
              "': q_heads must be a multiple of kv_heads (GQA grouping)");
    }
    if (is_moe() && (active_experts <= 0 || active_experts > num_experts)) {
        fatal("ModelConfig '" + name +
              "': active_experts must be in [1, num_experts]");
    }
    if (params_active_override > 0.0 && params_total_override > 0.0 &&
        params_active_override > params_total_override) {
        fatal("ModelConfig '" + name + "': active params exceed total");
    }
}

} // namespace shiftpar::model
