#include "model/presets.h"

#include <vector>

namespace shiftpar::model {

ModelConfig
llama_70b()
{
    ModelConfig m;
    m.name = "Llama-70B";
    m.num_layers = 80;
    m.hidden_size = 8192;
    m.q_heads = 64;
    m.kv_heads = 8;
    m.head_dim = 128;
    m.intermediate_size = 28672;
    m.vocab_size = 128256;
    m.weight_dtype = DType::kFp8;
    m.params_total_override = 70.6e9;
    m.validate();
    return m;
}

ModelConfig
qwen_32b()
{
    ModelConfig m;
    m.name = "Qwen-32B";
    m.num_layers = 64;
    m.hidden_size = 5120;
    m.q_heads = 64;
    m.kv_heads = 8;
    m.head_dim = 128;
    m.intermediate_size = 25600;
    m.vocab_size = 151936;
    m.weight_dtype = DType::kFp8;
    m.params_total_override = 32.8e9;
    m.validate();
    return m;
}

ModelConfig
llama_17b_16e()
{
    ModelConfig m;
    m.name = "Llama-17B-16E";
    m.num_layers = 48;
    m.hidden_size = 5120;
    m.q_heads = 40;
    m.kv_heads = 8;
    m.head_dim = 128;
    m.intermediate_size = 8192;
    m.vocab_size = 202048;
    m.num_experts = 16;
    m.active_experts = 1;
    m.weight_dtype = DType::kFp8;
    // Table 4 lists 109B total / 17B active (shared expert included).
    m.params_total_override = 109.0e9;
    m.params_active_override = 17.0e9;
    m.validate();
    return m;
}

ModelConfig
qwen_30b_a3b()
{
    ModelConfig m;
    m.name = "Qwen-30B-A3B";
    m.num_layers = 48;
    m.hidden_size = 2048;
    m.q_heads = 32;
    m.kv_heads = 4;
    m.head_dim = 128;
    m.intermediate_size = 768;
    m.vocab_size = 151936;
    m.num_experts = 128;
    m.active_experts = 8;
    m.weight_dtype = DType::kFp8;
    m.params_total_override = 30.5e9;
    m.params_active_override = 3.3e9;
    m.validate();
    return m;
}

std::vector<ModelConfig>
table4_models()
{
    return {llama_70b(), qwen_32b(), llama_17b_16e(), qwen_30b_a3b()};
}

} // namespace shiftpar::model
