#include "model/cost_model.h"

#include "util/logging.h"

namespace shiftpar::model {

std::int64_t
BatchWork::total_new_tokens() const
{
    std::int64_t total = 0;
    for (const auto& c : chunks)
        total += c.new_tokens;
    return total;
}

BatchWork
BatchWork::prefill(std::int64_t prompt_tokens)
{
    BatchWork w;
    w.chunks.push_back({prompt_tokens, 0, true});
    return w;
}

BatchWork
BatchWork::decode(std::int64_t batch, std::int64_t context)
{
    BatchWork w;
    w.chunks.reserve(static_cast<std::size_t>(batch));
    for (std::int64_t i = 0; i < batch; ++i)
        w.chunks.push_back({1, context, false});
    return w;
}

StepTiming&
StepTiming::operator+=(const StepTiming& o)
{
    gemm += o.gemm;
    attention += o.attention;
    comm += o.comm;
    overhead += o.overhead;
    return *this;
}

const char*
cost_model_kind_name(CostModelKind kind)
{
    switch (kind) {
      case CostModelKind::kRoofline: return "roofline";
      case CostModelKind::kKernel:   return "kernel";
    }
    return "?";
}

CostModelKind
parse_cost_model_kind(const std::string& s)
{
    if (s == "roofline")
        return CostModelKind::kRoofline;
    if (s == "kernel")
        return CostModelKind::kKernel;
    fatal("unknown cost model '" + s + "' (expected roofline|kernel)");
}

double
CostModel::prefill_time(std::int64_t prompt_tokens,
                        const parallel::ParallelConfig& cfg) const
{
    return evaluate(BatchWork::prefill(prompt_tokens), cfg).total();
}

double
CostModel::decode_step_time(std::int64_t batch, std::int64_t context,
                            const parallel::ParallelConfig& cfg) const
{
    return evaluate(BatchWork::decode(batch, context), cfg).total();
}

} // namespace shiftpar::model
