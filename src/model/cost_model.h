/**
 * @file
 * The pluggable step-cost interface.
 *
 * Every latency the simulator reports flows through one evaluation: "how
 * long does one engine iteration take under this (SP, TP) configuration?".
 * `CostModel` lifts that question behind an interface so implementations at
 * different fidelity levels are interchangeable:
 *
 *  - `parallel::PerfModel` — the default roofline aggregate (Algorithm 1
 *    shapes, max(compute, memory) per fused region). Fast, and the model
 *    the paper-reproduction figures are pinned against.
 *  - `parallel::KernelCostModel` — a kernel-decomposed model (attention
 *    prefill/decode, QKV/O/MLP GEMMs, norms, collectives) whose per-kernel
 *    coefficients (`hw::KernelCoeffs`) can be fit to external profiles by
 *    `tools/calibrate`.
 *
 * The batch/timing vocabulary (`SeqChunk`, `BatchWork`, `StepTiming`) lives
 * here — it describes *work* and *cost*, not a parallelism strategy — and is
 * re-exported under `shiftpar::parallel` for source compatibility with the
 * pre-interface code.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace shiftpar::parallel {
struct ParallelConfig;
} // namespace shiftpar::parallel

namespace shiftpar::model {

/** One request's contribution to a step: new tokens after cached context. */
struct SeqChunk
{
    /** Tokens processed this step (prefill chunk size, or 1 for decode). */
    std::int64_t new_tokens = 0;

    /** Tokens already in the KV cache for this sequence. */
    std::int64_t past = 0;

    /** True for prefill chunks (SwiftKV applies only to these). */
    bool is_prefill = false;
};

/** The work one engine iteration performs. */
struct BatchWork
{
    std::vector<SeqChunk> chunks;

    /** @return sum of new tokens across chunks (the Alg. 2 batch size). */
    std::int64_t total_new_tokens() const;

    /** @return number of sequences in the batch. */
    std::int64_t num_seqs() const
    {
        return static_cast<std::int64_t>(chunks.size());
    }

    /** Convenience: a pure-prefill batch of one request. */
    static BatchWork prefill(std::int64_t prompt_tokens);

    /** Convenience: a decode batch of `batch` sequences at `context` each. */
    static BatchWork decode(std::int64_t batch, std::int64_t context);
};

/** Step time decomposed into the Figure 15 cost components (seconds). */
struct StepTiming
{
    double gemm = 0.0;       ///< dense/expert GEMM compute + weight reads
    double attention = 0.0;  ///< attention kernels + KV cache traffic
    double comm = 0.0;       ///< collective communication
    double overhead = 0.0;   ///< engine (scheduler/launch) overhead

    double total() const { return gemm + attention + comm + overhead; }

    StepTiming& operator+=(const StepTiming& o);
};

/**
 * One kernel's contribution to a step (per GPU), as reported by cost models
 * that can decompose their estimate. `kernel` is the launch site (e.g.
 * "qkv_gemm", "attn_decode", "tp_allreduce"); `klass` is the coefficient
 * class it is costed under ("gemm", "attention", "norm", "collective",
 * "overhead"). `count`/`flops`/`bytes` are the features the cost was
 * derived from — `count` is the number of launches (or collective phases)
 * the row aggregates, `flops`/`bytes` are totals across them (wire volume
 * for collectives) — so a breakdown doubles as a calibration sample:
 * `tools/calibrate` fits class coefficients to (count, flops, bytes,
 * seconds) rows of exactly this shape, `t = alpha*count + beta*flops +
 * gamma*bytes`.
 */
struct KernelCost
{
    std::string kernel;
    std::string klass;
    double count = 1.0;
    double flops = 0.0;
    double bytes = 0.0;
    double seconds = 0.0;
};

/** Which cost-model implementation a deployment evaluates steps with. */
enum class CostModelKind { kRoofline, kKernel };

/** @return "roofline" / "kernel". */
const char* cost_model_kind_name(CostModelKind kind);

/** Parse a `--cost-model` value; fatal() on anything unrecognized. */
CostModelKind parse_cost_model_kind(const std::string& s);

/**
 * Evaluates step timings for one engine group on one node.
 *
 * Implementations are constructed per (node, model) pair, are stateless
 * across calls, and must be safe to query from the sweep runner's worker
 * threads. The engine owns one instance per replica.
 */
class CostModel
{
  public:
    virtual ~CostModel() = default;

    /** @return short implementation name for reports ("roofline", ...). */
    virtual const char* name() const = 0;

    /**
     * Time one engine iteration.
     *
     * @param work The batch composition.
     * @param cfg The execution configuration for this step.
     * @param sliced_weights True when this is a shift-mode step executed
     *        via on-the-fly slicing (adds the transpose penalty).
     * @param breakdown When non-null, filled with the per-kernel
     *        decomposition of the returned timing; the kernel seconds sum
     *        to exactly `result.total()`. Implementations without kernel
     *        granularity report their coarse components as pseudo-kernels.
     */
    virtual StepTiming evaluate(
        const BatchWork& work, const parallel::ParallelConfig& cfg,
        bool sliced_weights = false,
        std::vector<KernelCost>* breakdown = nullptr) const = 0;

    /** Shorthand: full (unchunked) prefill of one prompt. */
    double prefill_time(std::int64_t prompt_tokens,
                        const parallel::ParallelConfig& cfg) const;

    /** Shorthand: one decode step of `batch` seqs at `context` tokens. */
    double decode_step_time(std::int64_t batch, std::int64_t context,
                            const parallel::ParallelConfig& cfg) const;
};

} // namespace shiftpar::model
