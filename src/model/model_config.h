/**
 * @file
 * Transformer model description.
 *
 * `ModelConfig` carries the structural parameters that determine inference
 * performance: layer count, hidden size, Q/KV head counts (GQA, Section
 * 3.2.1), MLP width, and the MoE decomposition for sparse models. Parameter
 * counts are derived analytically from the structure; presets may pin the
 * headline totals to the paper's Table 4 values via the override fields
 * (model cards round, and exact GEMM shapes are what matter for timing).
 */

#pragma once

#include <cstdint>
#include <string>

#include "model/dtype.h"

namespace shiftpar::model {

/** Structural description of one decoder-only transformer. */
struct ModelConfig
{
    std::string name;

    /** Number of transformer layers. */
    int num_layers = 0;

    /** Hidden (embedding) dimension d. */
    int hidden_size = 0;

    /** Number of query attention heads h. */
    int q_heads = 0;

    /** Number of key/value heads h_kv (GQA when < q_heads). */
    int kv_heads = 0;

    /** Per-head dimension d_h. */
    int head_dim = 0;

    /** MLP intermediate dimension d' (per expert for MoE). */
    int intermediate_size = 0;

    /** Vocabulary size. */
    int vocab_size = 0;

    /** Maximum supported context length (prompt + output), tokens. */
    std::int64_t max_context = 131072;

    /** Total experts per MoE layer (0 = dense model). */
    int num_experts = 0;

    /** Experts activated per token (MoE only). */
    int active_experts = 0;

    /** Weight datatype (paper evaluates FP8 throughout). */
    DType weight_dtype = DType::kFp8;

    /** KV cache datatype (FP16 default; FP8 for the Mooncake run). */
    DType kv_dtype = DType::kFp16;

    /** Optional pinned totals matching Table 4 (0 = use analytic counts). */
    double params_total_override = 0.0;
    double params_active_override = 0.0;

    /** @return true when this is a mixture-of-experts model. */
    bool is_moe() const { return num_experts > 0; }

    /** Attention parameters of one layer (QKV + O projections). */
    double attn_params_per_layer() const;

    /** MLP parameters of one layer: all experts for MoE, plus router. */
    double mlp_params_per_layer() const;

    /** MLP parameters activated per token in one layer. */
    double mlp_active_params_per_layer() const;

    /** Embedding + LM-head parameters (untied). */
    double embedding_params() const;

    /**
     * Total (static) parameter count.
     * Uses the override when set; analytic count otherwise.
     */
    double total_params() const;

    /**
     * Parameters activated per token (== total for dense models).
     * Uses the override when set; analytic count otherwise.
     */
    double active_params() const;

    /** Total weight bytes at `weight_dtype`. */
    double weight_bytes() const;

    /**
     * Fraction of total weights that are MoE expert weights (0 for dense
     * models) — used to split expert-parallel sharding from TP sharding.
     */
    double expert_weight_fraction() const;

    /** KV cache bytes per token per layer (both K and V, all KV heads). */
    double kv_bytes_per_token_layer() const;

    /** KV cache bytes per token across all layers. */
    double kv_bytes_per_token() const;

    /**
     * Validate internal consistency (positive sizes, head divisibility,
     * GQA grouping); calls fatal() with a diagnostic on failure.
     */
    void validate() const;
};

} // namespace shiftpar::model
