/**
 * @file
 * Analytical FLOP and byte counters for transformer inference.
 *
 * All functions count *unsharded* (whole-model) work for one layer or for
 * the whole network; the parallelism performance model divides by shard
 * degrees per strategy. Conventions:
 *  - GEMM FLOPs = 2 * (elements of output) * (reduction dim) — the standard
 *    multiply-accumulate count.
 *  - Attention FLOPs count both the QK^T scores and the softmax(.)V product.
 *  - Causal masking is accounted exactly: token i of a chunk attends to
 *    `past + i + 1` positions.
 */

#pragma once

#include <cstdint>

#include "model/model_config.h"

namespace shiftpar::model {

/** QKV projection FLOPs for `n` tokens, one layer (GQA-aware). */
double qkv_flops(const ModelConfig& m, double n);

/** Output (O) projection FLOPs for `n` tokens, one layer. */
double o_flops(const ModelConfig& m, double n);

/** MLP FLOPs for `n` tokens, one layer (active experts only for MoE). */
double mlp_flops(const ModelConfig& m, double n);

/** All per-layer GEMM FLOPs (QKV + O + MLP) for `n` tokens. */
double layer_gemm_flops(const ModelConfig& m, double n);

/** LM-head FLOPs for `n` sampled positions. */
double lm_head_flops(const ModelConfig& m, double n);

/**
 * Causal attention FLOPs for a chunk of `new_tokens` appended after
 * `past` cached tokens, one layer.
 *
 * Token i (0-based) attends `past + i + 1` keys; scores and values each cost
 * 2 * h * d_h FLOPs per (query, key) pair.
 */
double attn_flops(const ModelConfig& m, double new_tokens, double past);

/**
 * KV-cache bytes *read* by attention for a chunk, one layer, all KV heads.
 *
 * FlashAttention-style kernels stream the K and V cache once per query
 * block; we charge one full read of the attended context per chunk (not per
 * token), matching measured decode memory-boundedness.
 */
double kv_read_bytes(const ModelConfig& m, double new_tokens, double past);

/** KV-cache bytes written for `new_tokens`, one layer, all KV heads. */
double kv_write_bytes(const ModelConfig& m, double new_tokens);

/**
 * Weight bytes read from HBM in one layer to process a batch of
 * `batch_tokens` tokens.
 *
 * Dense layers read all their weights once per step. MoE layers read only
 * the experts the batch routes to: with `n * active_experts` routed slots
 * over `num_experts` experts, the expected fraction of experts touched is
 * 1 - (1 - 1/E)^(n*a) (uniform-routing approximation).
 */
double layer_weight_read_bytes(const ModelConfig& m, double batch_tokens);

/** Dense weight bytes per layer (attention + dense MLP + MoE router). */
double layer_dense_weight_bytes(const ModelConfig& m);

/** Expert weight bytes read per layer for `batch_tokens` (0 for dense). */
double layer_expert_read_bytes(const ModelConfig& m, double batch_tokens);

/** Activation bytes streamed per layer for `n` tokens (read + write). */
double layer_activation_bytes(const ModelConfig& m, double n);

} // namespace shiftpar::model
