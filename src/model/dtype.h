/**
 * @file
 * Numeric datatypes for weights and KV cache.
 *
 * All evaluation models in the paper are FP8-quantized (Table 4); the
 * Mooncake experiment additionally switches the KV cache from FP16 to FP8 to
 * double cache capacity (Section 4.2.2).
 */

#pragma once

namespace shiftpar::model {

/** Element datatype. */
enum class DType { kFp8, kFp16, kBf16 };

/** @return bytes per element. */
inline constexpr double
dtype_bytes(DType t)
{
    switch (t) {
      case DType::kFp8:  return 1.0;
      case DType::kFp16: return 2.0;
      case DType::kBf16: return 2.0;
    }
    return 2.0;
}

/**
 * KV-cache bytes one token occupies in ONE head's K and V entries (the
 * factor 2 is K+V, not a dtype width). This is the shared unit between the
 * capacity accounting (`ModelConfig::kv_bytes_per_token_layer`, all KV
 * heads) and the migration costing (`kvcache::switch_cost_bytes`, per
 * moved head) — one definition so the two can never drift.
 */
inline constexpr double
kv_head_bytes_per_token(int head_dim, DType kv_dtype)
{
    return 2.0 * head_dim * dtype_bytes(kv_dtype);
}

/** @return short printable name. */
inline constexpr const char*
dtype_name(DType t)
{
    switch (t) {
      case DType::kFp8:  return "fp8";
      case DType::kFp16: return "fp16";
      case DType::kBf16: return "bf16";
    }
    return "?";
}

} // namespace shiftpar::model
