#include "obs/chrome_trace.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/json.h"
#include "util/logging.h"

namespace shiftpar::obs {

namespace {

/** Thread ids inside each engine process. */
constexpr int kTidSteps = 0;
constexpr int kTidMode = 1;
constexpr int kTidCache = 2;
constexpr int kTidFault = 3;

/** pid block reserved for the synthetic per-run "requests" processes. */
constexpr int kRequestsPidBase = 10000;

/** Build a one-level JSON object fragment: {"k":v,...}. */
class ArgsBuilder
{
  public:
    ArgsBuilder&
    add(const std::string& k, double v)
    {
        item(k) << util::json_number(v);
        return *this;
    }

    ArgsBuilder&
    add(const std::string& k, std::int64_t v)
    {
        item(k) << v;
        return *this;
    }

    ArgsBuilder&
    add(const std::string& k, const std::string& v)
    {
        item(k) << '"' << util::json_escape(v) << '"';
        return *this;
    }

    ArgsBuilder&
    add(const std::string& k, bool v)
    {
        item(k) << (v ? "true" : "false");
        return *this;
    }

    std::string
    str() const
    {
        return "{" + os_.str() + "}";
    }

  private:
    std::ostream&
    item(const std::string& k)
    {
        if (any_)
            os_ << ',';
        any_ = true;
        os_ << '"' << util::json_escape(k) << "\":";
        return os_;
    }

    std::ostringstream os_;
    bool any_ = false;
};

} // namespace

void
ChromeTraceWriter::on_engine_meta(const EngineMeta& meta)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Process p;
    p.pid = meta.engine;
    p.name = run_label_.empty() ? meta.label : run_label_ + "/" + meta.label;
    p.threads = {"steps", "mode", "cache", "fault"};
    processes_.push_back(std::move(p));
}

int
ChromeTraceWriter::requests_pid()
{
    if (!requests_process_made_) {
        requests_process_made_ = true;
        requests_pid_ =
            kRequestsPidBase + static_cast<int>(processes_.size());
        Process p;
        p.pid = requests_pid_;
        p.name = run_label_.empty() ? std::string("requests")
                                    : "requests (" + run_label_ + ")";
        processes_.push_back(std::move(p));
    }
    return requests_pid_;
}

void
ChromeTraceWriter::counter(int pid, double t, const std::string& name,
                           const std::string& series, double value)
{
    Event e;
    e.ph = 'C';
    e.pid = pid;
    e.ts = us(t);
    e.name = name;
    e.args_json = ArgsBuilder().add(series, value).str();
    events_.push_back(std::move(e));
}

void
ChromeTraceWriter::on_request(const RequestEvent& ev)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Event e;
    e.pid = requests_pid();
    e.ts = us(ev.t);
    e.cat = "request";
    // Unique async id per (requests process, request): each run gets its
    // own requests process, so overlapping simulated timelines of
    // consecutive runs cannot corrupt each other's span nesting.
    e.id = std::to_string(e.pid) + ":" + std::to_string(ev.request);
    // Causal span index stamped by publish_request; < 0 on events
    // delivered via a direct on_request (legacy tests, hand-built sinks).
    const auto with_span = [&](ArgsBuilder& args) -> ArgsBuilder& {
        if (ev.span >= 0)
            args.add("span", ev.span);
        return args;
    };
    switch (ev.phase) {
      case RequestPhase::kSubmit:
        if (open_requests_.insert(e.id).second) {
            e.ph = 'b';
            e.name = "req " + std::to_string(ev.request);
            ArgsBuilder args;
            args.add("prompt_tokens", ev.tokens)
                .add("engine", static_cast<std::int64_t>(ev.engine));
            e.args_json = with_span(args).str();
        } else {
            // Retry after a replica failure: the span is still open, so
            // the re-entry renders as a marker inside it.
            e.ph = 'n';
            e.name = "resubmit";
            ArgsBuilder args;
            args.add("engine", static_cast<std::int64_t>(ev.engine));
            e.args_json = with_span(args).str();
        }
        break;
      case RequestPhase::kFinish: {
        e.ph = 'e';
        e.name = "req " + std::to_string(ev.request);
        ArgsBuilder args;
        args.add("output_tokens", ev.tokens);
        e.args_json = with_span(args).str();
        open_requests_.erase(e.id);
        break;
      }
      case RequestPhase::kCancel: {
        e.ph = 'e';
        e.name = "req " + std::to_string(ev.request);
        ArgsBuilder args;
        args.add("cancelled", true);
        e.args_json = with_span(args).str();
        open_requests_.erase(e.id);
        break;
      }
      case RequestPhase::kExpired: {
        e.ph = 'e';
        e.name = "req " + std::to_string(ev.request);
        ArgsBuilder args;
        args.add("expired", true);
        e.args_json = with_span(args).str();
        open_requests_.erase(e.id);
        break;
      }
      case RequestPhase::kLost:
        if (open_requests_.erase(e.id) > 0) {
            // Retries exhausted on a request that had reached an engine:
            // close its span like a cancellation.
            e.ph = 'e';
            e.name = "req " + std::to_string(ev.request);
            ArgsBuilder args;
            args.add("lost", true);
            e.args_json = with_span(args).str();
        } else {
            // Lost before any engine accepted it (full outage from the
            // first attempt): no span to close, a bare marker suffices.
            e.ph = 'n';
            e.name = phase_name(ev.phase);
            if (ev.span >= 0) {
                ArgsBuilder args;
                e.args_json = with_span(args).str();
            }
        }
        break;
      default:
        e.ph = 'n';
        e.name = phase_name(ev.phase);
        {
            ArgsBuilder args;
            args.add("engine", static_cast<std::int64_t>(ev.engine));
            if (ev.tokens > 0)
                args.add("tokens", ev.tokens);
            e.args_json = with_span(args).str();
        }
        break;
    }
    events_.push_back(std::move(e));
}

void
ChromeTraceWriter::on_step(const StepEvent& ev)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Event e;
    e.ph = 'X';
    e.pid = ev.engine;
    e.tid = kTidSteps;
    e.ts = us(ev.start);
    e.dur = us(ev.end - ev.start);
    e.name = ev.shifted ? "shift step" : "base step";
    e.cat = "step";
    e.args_json = ArgsBuilder()
                      .add("batched_tokens", ev.batched_tokens)
                      .add("num_seqs", ev.num_seqs)
                      .add("config", ev.cfg.to_string())
                      .add("sliced", ev.sliced)
                      .add("gemm_ms", ev.timing.gemm * 1e3)
                      .add("attention_ms", ev.timing.attention * 1e3)
                      .add("comm_ms", ev.timing.comm * 1e3)
                      .add("overhead_ms", ev.timing.overhead * 1e3)
                      .str();
    events_.push_back(std::move(e));

    counter(ev.engine, ev.start, "batched_tokens", "tokens",
            static_cast<double>(ev.batched_tokens));
    counter(ev.engine, ev.start, "mode (1=shift)", "mode",
            ev.shifted ? 1.0 : 0.0);
}

void
ChromeTraceWriter::on_mode_switch(const ModeSwitchEvent& ev)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Event e;
    e.ph = 'i';
    e.pid = ev.engine;
    e.tid = kTidMode;
    e.ts = us(ev.t);
    e.name = ev.to_shift ? "shift" : "unshift";
    e.cat = "mode";
    e.args_json = ArgsBuilder()
                      .add("batched_tokens", ev.batched_tokens)
                      .add("from", ev.from.to_string())
                      .add("to", ev.to.to_string())
                      .str();
    events_.push_back(std::move(e));
}

void
ChromeTraceWriter::on_gauge(const GaugeEvent& ev)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counter(ev.engine, ev.t, "kv_occupancy", "fraction",
            ev.kv_utilization);
    counter(ev.engine, ev.t, "queue_depth", "requests",
            static_cast<double>(ev.waiting));
    counter(ev.engine, ev.t, "running_seqs", "requests",
            static_cast<double>(ev.running));
    counter(ev.engine, ev.t, "outstanding_tokens", "tokens",
            static_cast<double>(ev.outstanding_tokens));
}

void
ChromeTraceWriter::on_fault(const FaultEvent& ev)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Event e;
    e.ph = 'i';
    e.pid = ev.engine;
    e.tid = kTidFault;
    e.ts = us(ev.t);
    e.name = fault_kind_name(ev.kind);
    e.cat = "fault";
    ArgsBuilder args;
    if (ev.magnitude != 0.0)
        args.add("factor", ev.magnitude);
    if (ev.dropped_requests != 0)
        args.add("dropped_requests", ev.dropped_requests);
    e.args_json = args.str();
    events_.push_back(std::move(e));
}

void
ChromeTraceWriter::on_instant(EngineId engine, double t,
                              const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Event e;
    e.ph = 'i';
    e.pid = engine;
    e.tid = kTidCache;
    e.ts = us(t);
    e.name = name;
    e.cat = "cache";
    events_.push_back(std::move(e));
}

void
ChromeTraceWriter::write(std::ostream& os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    util::JsonWriter w(os);
    w.begin_object();
    w.kv("displayTimeUnit", "ms");
    w.key("traceEvents").begin_array();

    for (const auto& p : processes_) {
        w.begin_object();
        w.kv("ph", "M").kv("name", "process_name").kv("pid", p.pid);
        w.kv("tid", 0);
        w.key("args").begin_object().kv("name", p.name).end_object();
        w.end_object();
        for (std::size_t tid = 0; tid < p.threads.size(); ++tid) {
            w.begin_object();
            w.kv("ph", "M").kv("name", "thread_name").kv("pid", p.pid);
            w.kv("tid", static_cast<std::int64_t>(tid));
            w.key("args").begin_object();
            w.kv("name", p.threads[tid]);
            w.end_object();
            w.end_object();
        }
    }

    for (const auto& e : events_) {
        w.begin_object();
        w.kv("ph", std::string(1, e.ph));
        w.kv("pid", e.pid).kv("tid", e.tid).kv("ts", e.ts);
        if (e.ph == 'X')
            w.kv("dur", e.dur);
        if (e.ph == 'i')
            w.kv("s", "t");
        w.kv("name", e.name);
        if (!e.cat.empty())
            w.kv("cat", e.cat);
        if (!e.id.empty())
            w.kv("id", e.id);
        if (!e.args_json.empty())
            w.key("args").raw(e.args_json);
        w.end_object();
    }

    w.end_array();
    w.end_object();
    os << "\n";
}

void
ChromeTraceWriter::write_file(const std::string& path) const
{
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
    }
    std::ofstream os(path);
    if (!os)
        fatal("cannot open trace output file '" + path + "'");
    write(os);
}

} // namespace shiftpar::obs
