/**
 * @file
 * Chrome-trace (Perfetto-loadable) JSON exporter for simulation runs.
 *
 * Renders the event bus into the Trace Event Format understood by
 * `ui.perfetto.dev` and `chrome://tracing`:
 *
 *  - each engine becomes a *process* (pid = engine id) named from its
 *    `EngineMeta` label, with four threads: "steps" (complete events, one
 *    per iteration, named "base step"/"shift step" so the two modes color
 *    differently), "mode" (shift/unshift instants), "cache" (instants
 *    such as prefix evictions), and "fault" (fail/recover/degrade/straggle
 *    transitions from injected faults);
 *  - counter tracks per engine: batched tokens, execution mode (0 = base,
 *    1 = shift), KV occupancy, queue depth, and outstanding tokens;
 *  - requests become async (nestable) spans on a dedicated "requests"
 *    process, begun at submit and ended at finish/cancel (or at loss,
 *    when a faulted request exhausts its retries), with instant
 *    markers for first-schedule, prefill chunks, preemptions, resumes, and
 *    the first token — so a whole run's request lifecycles, including
 *    cross-engine migrations in disaggregated deployments, line up against
 *    the engines' step tracks on one timeline.
 *
 * Timestamps are microseconds of simulated time.
 */

#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <unordered_set>
#include <vector>

#include "obs/trace.h"

namespace shiftpar::obs {

/**
 * Buffers bus events and serializes them as Chrome trace JSON.
 *
 * Thread-safe: every handler and accessor locks one internal mutex, so
 * engines running on parallel sweep workers can share a writer. Note that
 * the *order* of buffered events then depends on thread interleaving; the
 * sweep runner serializes traced sweeps (see bench/common/sweep.h) so an
 * exported trace stays deterministic.
 */
class ChromeTraceWriter : public TraceSink
{
  public:
    ChromeTraceWriter() = default;

    void on_request(const RequestEvent& e) override;
    void on_step(const StepEvent& e) override;
    void on_mode_switch(const ModeSwitchEvent& e) override;
    void on_gauge(const GaugeEvent& e) override;
    void on_fault(const FaultEvent& e) override;
    void on_instant(EngineId engine, double t,
                    const std::string& name) override;

    /** Serialize the full trace document to `os`. */
    void write(std::ostream& os) const;

    /** Serialize to `path`; fatal() when the file cannot be opened. */
    void write_file(const std::string& path) const;

    /** @return buffered trace-event count (metadata excluded). */
    std::size_t
    num_events() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return events_.size();
    }

  protected:
    void on_engine_meta(const EngineMeta& meta) override;

    /**
     * Label prefix applied to engines registered from now on (e.g. the
     * strategy name when several deployments share one trace). Reached
     * through the base `set_run_label`, which resets span counters first.
     */
    void
    on_run_label(const std::string& label) override
    {
        std::lock_guard<std::mutex> lock(mutex_);
        run_label_ = label;
        // Each run gets a fresh "requests" process so async ids from
        // overlapping simulated timelines never collide.
        requests_process_made_ = false;
    }

  private:
    /** One pre-rendered trace event (args already JSON-encoded). */
    struct Event
    {
        char ph = 'i';            ///< Trace Event Format phase code
        int pid = 0;
        int tid = 0;
        double ts = 0.0;          ///< microseconds
        double dur = 0.0;         ///< "X" events only
        std::string name;
        std::string cat;
        std::string id;           ///< async events only
        std::string args_json;    ///< rendered {"k":v,...} or empty
    };

    /** Append a counter sample ("C" event). Caller holds `mutex_`. */
    void counter(int pid, double t, const std::string& name,
                 const std::string& series, double value);

    /**
     * Ensure the synthetic "requests" process exists and return its pid.
     * Caller holds `mutex_`.
     */
    int requests_pid();

    static double us(double seconds) { return seconds * 1e6; }

    mutable std::mutex mutex_;
    std::string run_label_;
    std::vector<Event> events_;  // shiftlint-guarded(mutex_)

    struct Process
    {
        int pid = 0;
        std::string name;
        std::vector<std::string> threads;  ///< tid -> name
    };
    std::vector<Process> processes_;  // shiftlint-guarded(mutex_)
    bool requests_process_made_ = false;
    int requests_pid_ = 0;

    /**
     * Async request spans currently open (by trace id). A retried request
     * re-enters `Engine::submit`, which republishes kSubmit; rendering that
     * as a second 'b' would corrupt the span nesting, so repeats become
     * in-span markers and kLost closes the span like a cancellation.
     */
    std::unordered_set<std::string> open_requests_;
};

} // namespace shiftpar::obs
