/**
 * @file
 * Process-wide self-observability metrics: named counters, gauges and
 * log-bucketed histograms with label support.
 *
 * The registry answers "what did this process do" the way `engine::Metrics`
 * answers "what did the simulated fleet do": any layer (Router fault paths,
 * the sim-core profiler, bench drivers) records into
 * `MetricsRegistry::current()` without new plumbing, and the bench harness
 * snapshots the aggregate into the JSON run report (`metrics` section) and,
 * with `--metrics-out`, a Prometheus-style text exposition.
 *
 * Determinism contract: all storage is `std::map`-backed so snapshots and
 * expositions enumerate in sorted (name, labels) order, and the sweep
 * runner gives every point a private registry (`set_thread_override`) that
 * it folds into the shared one in point-index order — the same float
 * operations in the same order at any `--jobs N`, so the emitted bytes
 * never depend on worker count.
 */

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/histogram.h"

namespace shiftpar::obs {

/** Version of the `metrics` report section and the exposition layout. */
constexpr int kMetricsSchemaVersion = 1;

/** Label set attached to one metric series ("key=value" dimensions). */
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/**
 * Plain-data copy of a registry's contents, sorted by (name, labels).
 *
 * This is the hand-off format between the registry and the report writer:
 * `ReportJson` stores one of these instead of referencing live registry
 * state, so reports are immune to metrics recorded after the snapshot.
 */
struct MetricsSnapshot
{
    struct Counter
    {
        std::string name;
        MetricLabels labels;
        std::int64_t value = 0;
    };

    struct Gauge
    {
        std::string name;
        MetricLabels labels;
        double value = 0.0;
    };

    struct HistogramSummary
    {
        std::string name;
        MetricLabels labels;
        std::int64_t count = 0;
        double sum = 0.0;
        double mean = 0.0;
        double min = 0.0;
        double max = 0.0;
        double p50 = 0.0;
        double p90 = 0.0;
        double p99 = 0.0;
    };

    std::vector<Counter> counters;
    std::vector<Gauge> gauges;
    std::vector<HistogramSummary> histograms;

    bool
    empty() const
    {
        return counters.empty() && gauges.empty() && histograms.empty();
    }
};

/**
 * Thread-safe named-metric accumulator.
 *
 * Three instrument kinds with deterministic merge semantics:
 *  - counters: monotonically added integers; merge sums.
 *  - gauges: latest level; merge takes the maximum (high-water), the only
 *    order-independent choice for parallel sweep points.
 *  - histograms: `util::Histogram` quantile sketches; merge folds buckets.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /** Add `delta` to the counter `name`/`labels` (creating it at 0). */
    void counter_add(const std::string& name, std::int64_t delta = 1,
                     const MetricLabels& labels = {});

    /** Set the gauge `name`/`labels` to `value`. */
    void gauge_set(const std::string& name, double value,
                   const MetricLabels& labels = {});

    /** Raise the gauge `name`/`labels` to at least `value` (high-water). */
    void gauge_max(const std::string& name, double value,
                   const MetricLabels& labels = {});

    /** Record one sample into the histogram `name`/`labels`. */
    void observe(const std::string& name, double value,
                 const MetricLabels& labels = {});

    /**
     * Fold `other` into this registry: counters sum, gauges take the max,
     * histograms merge buckets. Call order defines float-summation order,
     * so callers aggregating parallel work must merge in a fixed order
     * (the sweep runner merges per-point buffers by point index).
     */
    void merge_from(const MetricsRegistry& other);

    /** @return true when nothing has been recorded. */
    bool empty() const;

    /** Drop every series (tests and repeated in-process benches). */
    void clear();

    /** @return a sorted plain-data copy of the current contents. */
    MetricsSnapshot snapshot() const;

    /**
     * Write the Prometheus-style text exposition (`# TYPE` headed series,
     * histograms as summaries with quantile labels). Deterministic: sorted
     * series order, locale-independent numbers.
     */
    void write_prometheus(std::ostream& os) const;

    /** The process-wide registry that `current()` falls back to. */
    static MetricsRegistry& global();

    /**
     * The registry this thread records into: the thread override when one
     * is installed (sweep worker buffering), else `global()`.
     */
    static MetricsRegistry& current();

    /**
     * Install `registry` as this thread's recording target (null restores
     * `global()`). @return the previously installed override.
     */
    static MetricsRegistry* set_thread_override(MetricsRegistry* registry);

  private:
    /** Map key: metric name + canonically sorted labels. */
    using Key = std::pair<std::string, MetricLabels>;

    /** Labels sorted by key so equal label sets compare equal. */
    static Key make_key(const std::string& name, const MetricLabels& labels);

    mutable std::mutex mutex_;
    std::map<Key, std::int64_t> counters_;      // shiftlint-guarded(mutex_)
    std::map<Key, double> gauges_;              // shiftlint-guarded(mutex_)
    std::map<Key, util::Histogram> histograms_; // shiftlint-guarded(mutex_)
};

/** Render the snapshot's Prometheus exposition (shared with tests). */
void write_prometheus(const MetricsSnapshot& snap, std::ostream& os);

} // namespace shiftpar::obs
