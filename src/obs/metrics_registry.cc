#include "obs/metrics_registry.h"

#include <algorithm>

#include "util/json.h"

namespace shiftpar::obs {

namespace {

/** Per-thread recording target installed by the sweep runner. */
thread_local MetricsRegistry* tls_override = nullptr;

/** Prometheus metric-name charset: [a-zA-Z_:], digits after the first. */
std::string
sanitize_name(const std::string& name)
{
    std::string out;
    out.reserve(name.size());
    for (std::size_t i = 0; i < name.size(); ++i) {
        const char c = name[i];
        const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
        const bool digit = (c >= '0' && c <= '9');
        if (alpha || c == '_' || c == ':' || (digit && i > 0))
            out.push_back(c);
        else
            out.push_back('_');
    }
    return out.empty() ? std::string("_") : out;
}

/** Render `{a="x",b="y"}` (empty string for no labels). */
std::string
render_labels(const MetricLabels& labels)
{
    if (labels.empty())
        return "";
    std::string out = "{";
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i > 0)
            out += ",";
        out += sanitize_name(labels[i].first) + "=\"" +
               util::json_escape(labels[i].second) + "\"";
    }
    out += "}";
    return out;
}

/** As render_labels but with an extra quantile label appended. */
std::string
render_labels_with_quantile(const MetricLabels& labels, const char* q)
{
    std::string out = "{";
    for (const auto& [k, v] : labels)
        out += sanitize_name(k) + "=\"" + util::json_escape(v) + "\",";
    out += std::string("quantile=\"") + q + "\"}";
    return out;
}

} // namespace

MetricsRegistry::Key
MetricsRegistry::make_key(const std::string& name, const MetricLabels& labels)
{
    MetricLabels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    return {name, std::move(sorted)};
}

void
MetricsRegistry::counter_add(const std::string& name, std::int64_t delta,
                             const MetricLabels& labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_[make_key(name, labels)] += delta;
}

void
MetricsRegistry::gauge_set(const std::string& name, double value,
                           const MetricLabels& labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    gauges_[make_key(name, labels)] = value;
}

void
MetricsRegistry::gauge_max(const std::string& name, double value,
                           const MetricLabels& labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = gauges_.emplace(make_key(name, labels), value);
    if (!inserted)
        it->second = std::max(it->second, value);
}

void
MetricsRegistry::observe(const std::string& name, double value,
                         const MetricLabels& labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    histograms_[make_key(name, labels)].add(value);
}

void
MetricsRegistry::merge_from(const MetricsRegistry& other)
{
    if (&other == this)
        return;
    // Copy under the source lock, fold under ours; never hold both (fixed
    // acquisition order would also work, but sweep merges are rare enough
    // that the copy is cheaper than reasoning about lock ordering).
    decltype(counters_) counters;
    decltype(gauges_) gauges;
    decltype(histograms_) histograms;
    {
        std::lock_guard<std::mutex> lock(other.mutex_);
        counters = other.counters_;
        gauges = other.gauges_;
        histograms = other.histograms_;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [key, value] : counters)
        counters_[key] += value;
    for (const auto& [key, value] : gauges) {
        auto [it, inserted] = gauges_.emplace(key, value);
        if (!inserted)
            it->second = std::max(it->second, value);
    }
    for (const auto& [key, hist] : histograms) {
        auto it = histograms_.find(key);
        if (it == histograms_.end())
            histograms_.emplace(key, hist);
        else
            it->second.merge(hist);
    }
}

bool
MetricsRegistry::empty() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_.empty() && gauges_.empty() && histograms_.empty();
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto& [key, value] : counters_)
        snap.counters.push_back({key.first, key.second, value});
    snap.gauges.reserve(gauges_.size());
    for (const auto& [key, value] : gauges_)
        snap.gauges.push_back({key.first, key.second, value});
    snap.histograms.reserve(histograms_.size());
    for (const auto& [key, hist] : histograms_) {
        MetricsSnapshot::HistogramSummary s;
        s.name = key.first;
        s.labels = key.second;
        s.count = static_cast<std::int64_t>(hist.count());
        s.sum = hist.sum();
        s.mean = hist.mean();
        s.min = hist.min();
        s.max = hist.max();
        s.p50 = hist.percentile(50);
        s.p90 = hist.percentile(90);
        s.p99 = hist.percentile(99);
        snap.histograms.push_back(std::move(s));
    }
    return snap;
}

void
MetricsRegistry::write_prometheus(std::ostream& os) const
{
    obs::write_prometheus(snapshot(), os);
}

MetricsRegistry&
MetricsRegistry::global()
{
    // Leaky singleton, deliberately: the registry is reached from atexit
    // handlers (bench_common's --metrics-out flush) and other statics
    // whose destruction order against a function-local static is
    // unknowable. A function-local `static MetricsRegistry` would be
    // destroyed in reverse construction order and any later access — an
    // atexit handler registered before the first global() call, a static
    // destructor in another TU — would touch a dead object. The heap
    // instance is immortal (and stays LSan-reachable through this
    // pointer), so registry access is valid at any point in process
    // teardown. Pinned by tests/obs/test_metrics_registry.cc's
    // atexit-handler regression test.
    static MetricsRegistry* registry = new MetricsRegistry();
    return *registry;
}

MetricsRegistry&
MetricsRegistry::current()
{
    return tls_override ? *tls_override : global();
}

MetricsRegistry*
MetricsRegistry::set_thread_override(MetricsRegistry* registry)
{
    MetricsRegistry* previous = tls_override;
    tls_override = registry;
    return previous;
}

void
write_prometheus(const MetricsSnapshot& snap, std::ostream& os)
{
    // Snapshot vectors arrive sorted by (name, labels); `# TYPE` headers
    // are emitted once per metric name as the name changes.
    const std::string* last = nullptr;
    for (const auto& c : snap.counters) {
        const std::string name = sanitize_name(c.name);
        if (!last || *last != c.name)
            os << "# TYPE " << name << " counter\n";
        last = &c.name;
        os << name << render_labels(c.labels) << " " << c.value << "\n";
    }
    last = nullptr;
    for (const auto& g : snap.gauges) {
        const std::string name = sanitize_name(g.name);
        if (!last || *last != g.name)
            os << "# TYPE " << name << " gauge\n";
        last = &g.name;
        os << name << render_labels(g.labels) << " "
           << util::json_number(g.value) << "\n";
    }
    last = nullptr;
    for (const auto& h : snap.histograms) {
        const std::string name = sanitize_name(h.name);
        if (!last || *last != h.name)
            os << "# TYPE " << name << " summary\n";
        last = &h.name;
        os << name << render_labels_with_quantile(h.labels, "0.5") << " "
           << util::json_number(h.p50) << "\n";
        os << name << render_labels_with_quantile(h.labels, "0.9") << " "
           << util::json_number(h.p90) << "\n";
        os << name << render_labels_with_quantile(h.labels, "0.99") << " "
           << util::json_number(h.p99) << "\n";
        os << name << "_sum" << render_labels(h.labels) << " "
           << util::json_number(h.sum) << "\n";
        os << name << "_count" << render_labels(h.labels) << " " << h.count
           << "\n";
    }
}

} // namespace shiftpar::obs
