#include "obs/report_json.h"

#include <filesystem>
#include <fstream>

#include "util/json.h"
#include "util/logging.h"

namespace shiftpar::obs {

ReportJson::ReportJson(std::string title) : title_(std::move(title)) {}

void
ReportJson::add_run(const std::string& name, const engine::Metrics& metrics,
                    const std::optional<RunDeploymentInfo>& deployment,
                    const std::optional<engine::SloSpec>& slo,
                    const std::optional<fault::FaultStats>& faults,
                    const std::optional<engine::OverloadStats>& overload)
{
    Run run;
    run.name = name;
    run.deployment = deployment;
    run.requests = static_cast<std::int64_t>(metrics.requests().size());
    run.total_tokens = metrics.total_tokens();
    run.duration = metrics.end_time();
    run.mean_throughput = metrics.mean_throughput();
    run.peak_throughput = metrics.throughput().peak_rate();
    run.sp_steps = metrics.sp_steps();
    run.tp_steps = metrics.tp_steps();
    for (const auto& rec : metrics.requests())
        run.preemptions += rec.preemptions;

    const auto summarize = [](const util::Histogram& h) {
        LatencySummary s;
        s.p50 = h.percentile(50);
        s.p90 = h.percentile(90);
        s.p99 = h.percentile(99);
        s.mean = h.mean();
        s.min = h.min();
        s.max = h.max();
        s.count = static_cast<std::int64_t>(h.count());
        return s;
    };
    run.ttft = summarize(metrics.ttft());
    run.tpot = summarize(metrics.tpot());
    run.completion = summarize(metrics.completion());
    run.wait = summarize(metrics.wait());

    run.slo = slo;
    if (slo) {
        run.slo_attainment = metrics.slo_attainment(*slo);
        run.goodput = metrics.goodput(*slo);
    }
    run.faults = faults;
    run.overload = overload;
    std::lock_guard<std::mutex> lock(mutex_);
    runs_.push_back(std::move(run));
}

void
ReportJson::merge_from(ReportJson&& other)
{
    std::scoped_lock lock(mutex_, other.mutex_);
    for (auto& run : other.runs_)
        runs_.push_back(std::move(run));
    other.runs_.clear();
}

void
ReportJson::set_metrics(MetricsSnapshot snapshot)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (snapshot.empty())
        metrics_.reset();
    else
        metrics_ = std::move(snapshot);
}

void
ReportJson::write(std::ostream& os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    util::JsonWriter w(os, /*pretty=*/true);
    w.begin_object();
    w.kv("schema", kReportSchemaName);
    w.kv("version", kReportSchemaVersion);
    w.kv("title", title_);
    w.key("runs").begin_array();
    for (const auto& run : runs_) {
        w.begin_object();
        w.kv("name", run.name);
        w.key("deployment");
        if (run.deployment) {
            w.begin_object();
            w.kv("description", run.deployment->description);
            w.kv("sp", run.deployment->sp);
            w.kv("tp", run.deployment->tp);
            w.kv("replicas", run.deployment->replicas);
            w.kv("shift_threshold", run.deployment->shift_threshold);
            if (!run.deployment->cost_model.empty())
                w.kv("cost_model", run.deployment->cost_model);
            w.end_object();
        } else {
            w.null();
        }
        w.key("metrics").begin_object();
        w.kv("requests", run.requests);
        w.kv("total_tokens", run.total_tokens);
        w.kv("duration_s", run.duration);
        w.kv("mean_throughput_tok_s", run.mean_throughput);
        w.kv("peak_throughput_tok_s", run.peak_throughput);
        w.kv("sp_steps", run.sp_steps);
        w.kv("tp_steps", run.tp_steps);
        w.kv("preemptions", run.preemptions);
        const auto latency = [&](const char* key,
                                 const LatencySummary& s) {
            w.key(key).begin_object();
            w.kv("p50", s.p50).kv("p90", s.p90).kv("p99", s.p99);
            w.kv("mean", s.mean).kv("min", s.min).kv("max", s.max);
            w.kv("count", s.count);
            w.end_object();
        };
        latency("ttft_s", run.ttft);
        latency("tpot_s", run.tpot);
        latency("completion_s", run.completion);
        latency("wait_s", run.wait);
        w.key("slo");
        if (run.slo) {
            w.begin_object();
            w.kv("ttft_s", run.slo->ttft);
            w.kv("tpot_s", run.slo->tpot);
            w.kv("attainment", run.slo_attainment);
            w.kv("goodput_tok_s", run.goodput);
            w.end_object();
        } else {
            w.null();
        }
        w.end_object();  // metrics
        if (run.faults) {
            w.key("faults").begin_object();
            w.kv("failures", run.faults->failures);
            w.kv("recoveries", run.faults->recoveries);
            w.kv("straggles", run.faults->straggles);
            w.kv("degrades", run.faults->degrades);
            w.kv("dropped_requests", run.faults->dropped);
            w.kv("retries", run.faults->retries);
            w.kv("lost_requests", run.faults->lost);
            w.kv("shed_requests", run.faults->shed);
            w.end_object();
        }
        if (run.overload) {
            w.key("overload").begin_object();
            w.kv("completed", run.overload->completed);
            w.kv("expired", run.overload->expired);
            w.kv("cancelled", run.overload->cancelled);
            w.kv("hedges", run.overload->hedges);
            w.kv("hedge_wins", run.overload->hedge_wins);
            w.kv("hedge_losses", run.overload->hedge_losses);
            w.kv("breaker_opens", run.overload->breaker_opens);
            w.kv("breaker_probes", run.overload->breaker_probes);
            w.kv("breaker_closes", run.overload->breaker_closes);
            w.kv("drains", run.overload->drains);
            w.kv("drained_requests", run.overload->drained);
            w.kv("drain_resumes", run.overload->drain_resumes);
            w.end_object();
        }
        w.end_object();  // run
    }
    w.end_array();
    if (metrics_) {
        const auto labels = [&](const MetricLabels& ls) {
            w.key("labels").begin_object();
            for (const auto& [k, v] : ls)
                w.kv(k, v);
            w.end_object();
        };
        w.key("metrics").begin_object();
        w.kv("version", kMetricsSchemaVersion);
        w.key("counters").begin_array();
        for (const auto& c : metrics_->counters) {
            w.begin_object();
            w.kv("name", c.name);
            labels(c.labels);
            w.kv("value", c.value);
            w.end_object();
        }
        w.end_array();
        w.key("gauges").begin_array();
        for (const auto& g : metrics_->gauges) {
            w.begin_object();
            w.kv("name", g.name);
            labels(g.labels);
            w.kv("value", g.value);
            w.end_object();
        }
        w.end_array();
        w.key("histograms").begin_array();
        for (const auto& h : metrics_->histograms) {
            w.begin_object();
            w.kv("name", h.name);
            labels(h.labels);
            w.kv("count", h.count);
            w.kv("sum", h.sum).kv("mean", h.mean);
            w.kv("min", h.min).kv("max", h.max);
            w.kv("p50", h.p50).kv("p90", h.p90).kv("p99", h.p99);
            w.end_object();
        }
        w.end_array();
        w.end_object();  // metrics
    }
    w.end_object();
    os << "\n";
}

void
ReportJson::write_file(const std::string& path) const
{
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
    }
    std::ofstream os(path);
    if (!os)
        fatal("cannot open report output file '" + path + "'");
    write(os);
}

} // namespace shiftpar::obs
