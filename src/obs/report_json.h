/**
 * @file
 * Machine-readable JSON run reports.
 *
 * Every experiment driver (the `bench_*` binaries, `core::run_deployment`,
 * the examples) previously printed ad-hoc tables and per-figure CSVs;
 * `ReportJson` gives them one schema-versioned document that
 * `tools/plot_results.py` (and any external analysis) can consume without
 * per-figure parsing code.
 *
 * Schema (`shiftpar.run_report`, version 1):
 *
 * {
 *   "schema": "shiftpar.run_report",
 *   "version": 1,
 *   "title": "<figure or experiment title>",
 *   "runs": [
 *     {
 *       "name": "<series name, e.g. strategy>",
 *       "deployment": {"description": "...", "sp": 4, "tp": 2,
 *                      "replicas": 1, "shift_threshold": 1536},
 *       "metrics": {
 *         "requests": N, "total_tokens": N, "duration_s": T,
 *         "mean_throughput_tok_s": R, "peak_throughput_tok_s": R,
 *         "sp_steps": N, "tp_steps": N, "preemptions": null | N,
 *         "ttft_s":       {"p50":..,"p90":..,"p99":..,"mean":..,
 *                          "min":..,"max":..,"count":..},
 *         "tpot_s":       {...}, "completion_s": {...}, "wait_s": {...},
 *         "slo": null | {"ttft_s":..,"tpot_s":..,"attainment":..,
 *                        "goodput_tok_s":..}
 *       },
 *       "faults": {"failures": N, "recoveries": N, "straggles": N,
 *                  "degrades": N, "dropped_requests": N, "retries": N,
 *                  "lost_requests": N, "shed_requests": N}
 *     }, ...
 *   ]
 * }
 *
 * The "faults" key is emitted only for runs recorded with fault stats
 * (still version 1: purely additive, absent for every pre-existing
 * producer, so committed reports stay byte-identical). The "overload" key
 * follows the same rule for request-lifecycle runs (deadlines, client
 * cancellation, hedged retries, circuit breakers, graceful drain):
 *
 *       "overload": {"completed": N, "expired": N, "cancelled": N,
 *                    "hedges": N, "hedge_wins": N, "hedge_losses": N,
 *                    "breaker_opens": N, "breaker_probes": N,
 *                    "breaker_closes": N, "drains": N,
 *                    "drained_requests": N, "drain_resumes": N}
 *
 * A top-level "metrics" key (the process self-observability snapshot from
 * `obs::MetricsRegistry`, own "version" inside) follows the same additive
 * rule: emitted only when `set_metrics` attached a non-empty snapshot.
 *
 *   "metrics": {
 *     "version": 1,
 *     "counters":   [{"name": "...", "labels": {...}, "value": N}, ...],
 *     "gauges":     [{"name": "...", "labels": {...}, "value": V}, ...],
 *     "histograms": [{"name": "...", "labels": {...}, "count": N,
 *                     "sum":..,"mean":..,"min":..,"max":..,
 *                     "p50":..,"p90":..,"p99":..}, ...]
 *   }
 */

#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "engine/metrics.h"
#include "engine/overload.h"
#include "fault/fault_schedule.h"
#include "obs/metrics_registry.h"

namespace shiftpar::obs {

/** Current schema version of the emitted document. */
constexpr int kReportSchemaVersion = 1;

/** Schema identifier of the emitted document. */
constexpr const char* kReportSchemaName = "shiftpar.run_report";

/** Deployment facts attached to one run (plain data; no core dependency). */
struct RunDeploymentInfo
{
    std::string description;
    int sp = 0;
    int tp = 0;
    int replicas = 0;
    std::int64_t shift_threshold = 0;

    /**
     * Non-default cost model the run was priced with ("kernel"); empty for
     * the roofline default and then omitted from the document, so existing
     * reports keep their exact bytes.
     */
    std::string cost_model;
};

/**
 * Accumulates named runs and serializes the report document.
 *
 * Thread-safe: `add_run`/`merge_from` lock an internal mutex, so parallel
 * sweep workers can record into per-point buffers that the sweep runner
 * merges into a shared report in submission order (keeping the document
 * byte-identical to a sequential sweep).
 */
class ReportJson
{
  public:
    /** @param title Human title (the figure/experiment name). */
    explicit ReportJson(std::string title = "");

    void
    set_title(const std::string& title)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        title_ = title;
    }

    /**
     * Append one run.
     *
     * @param name Series name (strategy, sweep point, ...).
     * @param metrics The run's merged metrics.
     * @param deployment Optional resolved-deployment facts.
     * @param slo Optional SLO to evaluate attainment/goodput against.
     * @param faults Optional fault-replay counters (fault-injected runs).
     * @param overload Optional request-lifecycle counters (runs with
     *        deadlines, cancellation, hedging, breakers, or drains).
     */
    void add_run(const std::string& name, const engine::Metrics& metrics,
                 const std::optional<RunDeploymentInfo>& deployment = {},
                 const std::optional<engine::SloSpec>& slo = {},
                 const std::optional<fault::FaultStats>& faults = {},
                 const std::optional<engine::OverloadStats>& overload = {});

    /**
     * Move every run of `other` to the end of this report, preserving
     * their order. `other` is left empty; its title is ignored (as is its
     * metrics snapshot — the process-wide registry is snapshotted once by
     * whoever owns the shared report).
     */
    void merge_from(ReportJson&& other);

    /**
     * Attach the self-observability snapshot rendered as the top-level
     * "metrics" section. Empty snapshots are dropped, keeping the document
     * byte-identical to reports written before this section existed.
     */
    void set_metrics(MetricsSnapshot snapshot);

    /** @return number of accumulated runs. */
    std::size_t
    num_runs() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return runs_.size();
    }

    /** Serialize the document (pretty-printed). */
    void write(std::ostream& os) const;

    /** Serialize to `path`; fatal() when the file cannot be opened. */
    void write_file(const std::string& path) const;

  private:
    struct LatencySummary
    {
        double p50 = 0.0, p90 = 0.0, p99 = 0.0;
        double mean = 0.0, min = 0.0, max = 0.0;
        std::int64_t count = 0;
    };

    struct Run
    {
        std::string name;
        std::optional<RunDeploymentInfo> deployment;
        std::int64_t requests = 0;
        std::int64_t total_tokens = 0;
        double duration = 0.0;
        double mean_throughput = 0.0;
        double peak_throughput = 0.0;
        std::int64_t sp_steps = 0;
        std::int64_t tp_steps = 0;
        std::int64_t preemptions = 0;
        LatencySummary ttft, tpot, completion, wait;
        std::optional<engine::SloSpec> slo;
        double slo_attainment = 0.0;
        double goodput = 0.0;
        std::optional<fault::FaultStats> faults;
        std::optional<engine::OverloadStats> overload;
    };

    mutable std::mutex mutex_;
    std::string title_;                        // shiftlint-guarded(mutex_)
    std::vector<Run> runs_;                    // shiftlint-guarded(mutex_)
    std::optional<MetricsSnapshot> metrics_;   // shiftlint-guarded(mutex_)
};

} // namespace shiftpar::obs
