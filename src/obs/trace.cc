#include "obs/trace.h"

namespace shiftpar::obs {

const char*
phase_name(RequestPhase phase)
{
    switch (phase) {
      case RequestPhase::kSubmit:        return "submit";
      case RequestPhase::kRouted:        return "routed";
      case RequestPhase::kMigrated:      return "migrated";
      case RequestPhase::kFirstSchedule: return "first_schedule";
      case RequestPhase::kPrefillChunk:  return "prefill_chunk";
      case RequestPhase::kPreempt:       return "preempt";
      case RequestPhase::kResume:        return "resume";
      case RequestPhase::kFirstToken:    return "first_token";
      case RequestPhase::kFinish:        return "finish";
      case RequestPhase::kCancel:        return "cancel";
      case RequestPhase::kRetried:       return "retried";
      case RequestPhase::kLost:          return "lost";
      case RequestPhase::kShed:          return "shed";
      case RequestPhase::kExpired:       return "expired";
      case RequestPhase::kHedged:        return "hedged";
      case RequestPhase::kHedgeWon:      return "hedge_won";
      case RequestPhase::kHedgeLost:     return "hedge_lost";
      case RequestPhase::kDrained:       return "drained";
    }
    return "?";
}

const char*
fault_kind_name(FaultKind kind)
{
    switch (kind) {
      case FaultKind::kFail:          return "fail";
      case FaultKind::kRecover:       return "recover";
      case FaultKind::kLinkDegrade:   return "link_degrade";
      case FaultKind::kLinkRestore:   return "link_restore";
      case FaultKind::kStraggleStart: return "straggle_start";
      case FaultKind::kStraggleEnd:   return "straggle_end";
      case FaultKind::kDrainStart:    return "drain_start";
      case FaultKind::kDrainEnd:      return "drain_end";
      case FaultKind::kBreakerOpen:   return "breaker_open";
      case FaultKind::kBreakerHalfOpen: return "breaker_half_open";
      case FaultKind::kBreakerClose:  return "breaker_close";
    }
    return "?";
}

EngineId
TraceSink::register_engine(EngineMeta meta)
{
    std::lock_guard<std::mutex> lock(register_mutex_);
    meta.engine = next_engine_++;
    on_engine_meta(meta);
    return meta.engine;
}

void
TraceSink::publish_request(RequestEvent ev)
{
    {
        std::lock_guard<std::mutex> lock(span_mutex_);
        ev.span = next_span_[ev.request]++;
    }
    on_request(ev);
}

void
TraceSink::set_run_label(const std::string& label)
{
    {
        // Request ids restart at 0 per run, so span chains do too —
        // without the reset, run 2's request 0 would continue run 1's
        // numbering and the chains would interleave.
        std::lock_guard<std::mutex> lock(span_mutex_);
        next_span_.clear();
    }
    on_run_label(label);
}

} // namespace shiftpar::obs
