/**
 * @file
 * The observability event bus: typed simulation events and the `TraceSink`
 * consumer interface.
 *
 * `Engine`, `Scheduler`, `Router`, `ShiftController`, and `CacheManager`
 * publish here; sinks (Chrome-trace export, counters, tests) subscribe by
 * implementing `TraceSink`. Publication sites are guarded by a null check
 * on the borrowed sink pointer, so a run without a sink attached executes
 * exactly the seed code path — simulation results are bit-identical with
 * tracing on or off because sinks only *observe* state, never mutate it.
 *
 * Engine identity: sinks allocate globally unique engine ids via
 * `register_engine`, letting one sink span multiple deployments in a
 * single trace (e.g. the four strategies of a comparison figure, or the
 * prefill + decode pools of a disaggregated system).
 */

#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "parallel/config.h"
#include "parallel/perf_model.h"

namespace shiftpar::obs {

/** Globally unique engine/track identifier within one sink. */
using EngineId = int;

/** Request identifier (mirrors engine::RequestId without the dependency). */
using RequestId = std::int64_t;

/** Request lifecycle transitions (Section 2.1's serving pipeline). */
enum class RequestPhase
{
    kSubmit,         ///< entered an engine's waiting queue
    kRouted,         ///< router picked a replica (DP deployments)
    kMigrated,       ///< rebalanced to another replica before progress
    kFirstSchedule,  ///< first chunk scheduled (ends queueing delay)
    kPrefillChunk,   ///< one chunked-prefill piece scheduled
    kPreempt,        ///< recompute-preempted (KV released)
    kResume,         ///< rescheduled after a preemption
    kFirstToken,     ///< first output token produced (TTFT point)
    kFinish,         ///< all output tokens produced
    kCancel,         ///< client abort
    kRetried,        ///< re-routed to a survivor after a replica failure
    kLost,           ///< dropped permanently (retries exhausted)
    kShed,           ///< rejected by the degraded-mode admission guard
    kExpired,        ///< evicted past its completion deadline
    kHedged,         ///< duplicated onto another replica (hedged retry)
    kHedgeWon,       ///< a hedged request's first copy completed
    kHedgeLost,      ///< the losing hedge copy was resolved
    kDrained,        ///< handed back by a gracefully draining replica
};

/** @return a stable lowercase name for a phase ("submit", "preempt", ...). */
const char* phase_name(RequestPhase phase);

/** One request lifecycle event. */
struct RequestEvent
{
    EngineId engine = 0;
    RequestId request = 0;
    RequestPhase phase = RequestPhase::kSubmit;

    /** Simulated time, seconds. */
    double t = 0.0;

    /** Phase payload: chunk tokens (kPrefillChunk), prompt tokens
     *  (kSubmit), output tokens (kFinish); 0 otherwise. */
    std::int64_t tokens = 0;

    /**
     * Causal span index within this request's lifecycle: 0 for the
     * request's first event, incrementing per event, so a consumer can
     * rebuild the arrival → admit → prefill → decode → complete chain
     * (including retry/migrate detours) without trusting timestamps to
     * break ties. Stamped by `TraceSink::publish_request`; -1 marks an
     * event delivered without stamping (direct `on_request` calls).
     */
    std::int64_t span = -1;
};

/** One engine iteration (the per-step telemetry of Figs. 7/15). */
struct StepEvent
{
    EngineId engine = 0;
    double start = 0.0;
    double end = 0.0;
    std::int64_t batched_tokens = 0;  ///< Alg. 2 decision input
    std::int64_t num_seqs = 0;
    parallel::ParallelConfig cfg;     ///< configuration executed
    bool shifted = false;             ///< ran the shift (SP=1) config
    bool sliced = false;              ///< weights sliced on the fly
    parallel::StepTiming timing;
};

/** A shift/unshift transition (Algorithm 2 firing). */
struct ModeSwitchEvent
{
    EngineId engine = 0;
    double t = 0.0;
    bool to_shift = false;  ///< true: base -> shift; false: shift -> base
    std::int64_t batched_tokens = 0;
    parallel::ParallelConfig from;
    parallel::ParallelConfig to;
};

/** Kinds of injected-fault transitions on an engine or its links. */
enum class FaultKind
{
    kFail,           ///< fail-stop: the engine drops all in-flight state
    kRecover,        ///< the engine rejoins with an empty KV cache
    kLinkDegrade,    ///< interconnect slowdown applied (magnitude = factor)
    kLinkRestore,    ///< interconnect back to full speed
    kStraggleStart,  ///< per-step slowdown applied (magnitude = factor)
    kStraggleEnd,    ///< straggler back to full speed
    kDrainStart,     ///< graceful drain: admission stopped, queue handed back
    kDrainEnd,       ///< drained engine re-admitting new work
    kBreakerOpen,    ///< circuit breaker tripped: replica receives no traffic
    kBreakerHalfOpen,///< breaker probing: one request admitted
    kBreakerClose,   ///< breaker closed: replica healthy again
};

/** @return a stable lowercase name for a fault kind ("fail", ...). */
const char* fault_kind_name(FaultKind kind);

/** One fault/recovery transition (published by the failing component). */
struct FaultEvent
{
    EngineId engine = 0;
    FaultKind kind = FaultKind::kFail;

    /** Simulated time, seconds. */
    double t = 0.0;

    /** Slowdown factor for degrade/straggle transitions; 0 otherwise. */
    double magnitude = 0.0;

    /** In-flight requests dropped by a kFail transition; 0 otherwise. */
    std::int64_t dropped_requests = 0;
};

/** Sampled engine gauges (taken after every step). */
struct GaugeEvent
{
    EngineId engine = 0;
    double t = 0.0;
    double kv_utilization = 0.0;       ///< KV-block pool occupancy [0,1]
    std::int64_t kv_free_tokens = 0;
    std::int64_t waiting = 0;          ///< queue depth
    std::int64_t running = 0;          ///< admitted sequences
    std::int64_t outstanding_tokens = 0;
};

/** Static engine description emitted once at registration. */
struct EngineMeta
{
    EngineId engine = 0;
    std::string label;  ///< e.g. "shift/engine 0 (SP=4,TP=2)"
    parallel::ParallelConfig base;
    std::int64_t shift_threshold = 0;  ///< 0 when the engine never shifts
};

/** Consumer interface; default implementations ignore everything. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /**
     * Allocate a unique engine id and announce the engine to the sink.
     * `meta.engine` is overwritten with the allocated id, which the caller
     * must use for all subsequent events from that engine. Thread-safe:
     * parallel sweep workers may build deployments concurrently against a
     * shared sink (id allocation and the `on_engine_meta` callback happen
     * under one lock, so ids are unique and registration is atomic).
     */
    EngineId register_engine(EngineMeta meta);

    /**
     * Deliver a request lifecycle event with its causal `span` stamped:
     * the request's events number 0, 1, 2, ... in publication order,
     * forming the per-request span chain `tools/tracestat` rebuilds.
     * Producers (Engine/Scheduler/Router/fault paths) publish through
     * this; `on_request` remains the consumer callback. Thread-safe for
     * the same reason `register_engine` is.
     */
    void publish_request(RequestEvent ev);

    /**
     * Start a new logically separate run: resets the per-request span
     * counters (request ids restart per run) and forwards the label to
     * `on_run_label` for sinks that group output by run.
     */
    void set_run_label(const std::string& label);

    virtual void on_request(const RequestEvent&) {}
    virtual void on_step(const StepEvent&) {}
    virtual void on_mode_switch(const ModeSwitchEvent&) {}
    virtual void on_gauge(const GaugeEvent&) {}
    virtual void on_fault(const FaultEvent&) {}

    /** Free-form point event (e.g. a prefix-cache eviction). */
    virtual void on_instant(EngineId, double /*t*/,
                            const std::string& /*name*/)
    {
    }

  protected:
    /** Registration callback for subclasses (id already assigned). */
    virtual void on_engine_meta(const EngineMeta&) {}

    /** Run-label callback for subclasses (spans already reset). */
    virtual void on_run_label(const std::string&) {}

  private:
    std::mutex register_mutex_;
    EngineId next_engine_ = 0;  // shiftlint-guarded(register_mutex_)

    std::mutex span_mutex_;
    // shiftlint-guarded(span_mutex_)
    std::unordered_map<RequestId, std::int64_t> next_span_;
};

} // namespace shiftpar::obs
