#include "kvcache/cache_manager.h"

#include <algorithm>

#include "util/logging.h"

namespace shiftpar::kvcache {

CacheManager::CacheManager(std::int64_t token_capacity, KvLayout layout,
                           int block_size)
    : token_capacity_(token_capacity), layout_(std::move(layout)),
      allocator_(token_capacity / block_size, block_size)
{
    SP_ASSERT(token_capacity >= 0);
}

bool
CacheManager::try_append(RequestId id, std::int64_t tokens)
{
    auto [it, inserted] = tables_.try_emplace(id);
    bool ok = it->second.append_tokens(tokens, allocator_);
    if (!ok) {
        // Reclaim cold prefix entries before reporting pressure upward.
        evict_idle_prefixes(allocator_.blocks_for_tokens(tokens) + 1);
        ok = it->second.append_tokens(tokens, allocator_);
    }
    if (!ok && inserted)
        tables_.erase(it);
    return ok;
}

PrefixAttach
CacheManager::attach_prefix(PrefixKey key, std::int64_t target_tokens,
                            bool count_hit)
{
    SP_ASSERT(key >= 0 && target_tokens >= 0);
    auto [it, inserted] = prefixes_.try_emplace(key);
    PrefixEntry& entry = it->second;
    if (inserted)
        entry.target = target_tokens;
    entry.target = std::max(entry.target, target_tokens);
    ++entry.refs;
    entry.last_use = ++lru_clock_;

    PrefixAttach result;
    result.hit_tokens = std::min(entry.blocks.num_tokens(), target_tokens);
    // Become the filler if the entry is short of its target and nobody
    // else is filling it.
    if (!entry.filling && entry.blocks.num_tokens() < entry.target) {
        entry.filling = true;
        result.is_filler = true;
    }
    if (count_hit)
        prefix_hit_tokens_ += result.hit_tokens;
    return result;
}

bool
CacheManager::try_append_prefix(PrefixKey key, std::int64_t tokens)
{
    auto it = prefixes_.find(key);
    SP_ASSERT(it != prefixes_.end(), "append to unknown prefix entry");
    PrefixEntry& entry = it->second;
    bool ok = entry.blocks.append_tokens(tokens, allocator_);
    if (!ok) {
        evict_idle_prefixes(allocator_.blocks_for_tokens(tokens) + 1);
        ok = entry.blocks.append_tokens(tokens, allocator_);
    }
    if (ok) {
        entry.last_use = ++lru_clock_;
        if (entry.blocks.num_tokens() >= entry.target)
            entry.filling = false;
    }
    return ok;
}

void
CacheManager::detach_prefix(PrefixKey key)
{
    auto it = prefixes_.find(key);
    if (it == prefixes_.end())
        return;
    SP_ASSERT(it->second.refs > 0, "prefix refcount underflow");
    --it->second.refs;
    // A departing filler may leave the entry short; a later attach will
    // resume filling it.
    it->second.filling = false;
}

std::int64_t
CacheManager::prefix_cached_tokens(PrefixKey key) const
{
    auto it = prefixes_.find(key);
    return it == prefixes_.end() ? 0 : it->second.blocks.num_tokens();
}

bool
CacheManager::evict_idle_prefixes(std::int64_t blocks)
{
    while (allocator_.num_free() < blocks) {
        PrefixKey victim = -1;
        std::uint64_t oldest = ~std::uint64_t{0};
        // Victim selection is a total order over (last_use, key): two
        // entries idle since the same tick tie-break on the smaller key,
        // so the choice — and the eviction trace — never depends on hash
        // iteration order.
        // shiftlint-allow(unordered-emit): victim selection uses a total order over (last_use, key), independent of iteration order
        for (auto& [key, entry] : prefixes_) {
            if (entry.refs != 0 || entry.blocks.num_blocks() == 0)
                continue;
            if (entry.last_use < oldest ||
                (entry.last_use == oldest &&
                 (victim < 0 || key < victim))) {
                victim = key;
                oldest = entry.last_use;
            }
        }
        if (victim < 0)
            return false;
        auto it = prefixes_.find(victim);
        it->second.blocks.release(allocator_);
        prefixes_.erase(it);
        if (trace_ && trace_clock_) {
            trace_->on_instant(trace_id_, *trace_clock_,
                               "prefix_evict #" + std::to_string(victim));
        }
    }
    return true;
}

void
CacheManager::release(RequestId id)
{
    auto it = tables_.find(id);
    if (it == tables_.end())
        return;
    it->second.release(allocator_);
    tables_.erase(it);
}

std::int64_t
CacheManager::cached_tokens(RequestId id) const
{
    auto it = tables_.find(id);
    return it == tables_.end() ? 0 : it->second.num_tokens();
}

std::int64_t
CacheManager::free_tokens() const
{
    return allocator_.num_free() * allocator_.block_size();
}

void
CacheManager::assert_invariant_with(const KvLayout& other) const
{
    SP_ASSERT(layout_.invariant_with(other),
              "KV cache layouts are not invariant: ", describe(layout_),
              " vs ", describe(other));
}

} // namespace shiftpar::kvcache
