#include "kvcache/block_table.h"

#include "util/logging.h"
#include "util/units.h"

namespace shiftpar::kvcache {

bool
BlockTable::append_tokens(std::int64_t tokens, BlockAllocator& allocator)
{
    SP_ASSERT(tokens >= 0);
    if (tokens == 0)
        return true;
    const std::int64_t needed_total =
        allocator.blocks_for_tokens(num_tokens_ + tokens);
    const std::int64_t extra = needed_total - num_blocks();
    if (extra > 0 && !allocator.can_allocate(extra))
        return false;
    for (std::int64_t i = 0; i < extra; ++i) {
        auto block = allocator.allocate();
        SP_ASSERT(block.has_value(),
                  "allocator reneged after can_allocate succeeded");
        blocks_.push_back(*block);
    }
    num_tokens_ += tokens;
    return true;
}

void
BlockTable::release(BlockAllocator& allocator)
{
    for (BlockId b : blocks_)
        allocator.free(b);
    blocks_.clear();
    num_tokens_ = 0;
}

} // namespace shiftpar::kvcache
