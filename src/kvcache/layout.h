/**
 * @file
 * Distributed KV-cache layout descriptors and the invariance/switch-cost
 * analysis that motivates Shift Parallelism (Sections 1, 3.1, 3.3.1).
 *
 * A `KvLayout` records which KV heads each rank stores, in on-device order,
 * plus how the *sequence* dimension is distributed (sharded by head across
 * the group, or confined to one replica under DP). Two execution
 * configurations can share a cache iff their layouts are equal — the paper's
 * KV-cache invariance. `switch_cost_bytes` quantifies the data movement a
 * non-invariant switch would require (e.g. TP <-> DP), which is why only
 * SP <-> TP switching is viable.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/model_config.h"
#include "parallel/config.h"
#include "parallel/layout.h"

namespace shiftpar::kvcache {

/** How the cached sequence's KV is distributed over ranks. */
enum class SeqPlacement
{
    /** Every rank holds all tokens for its head subset (TP/SP/SP+TP). */
    kHeadSharded,

    /** One replica holds all tokens for all heads (DP). */
    kReplicaLocal,
};

/** Distributed layout of one engine's KV cache. */
struct KvLayout
{
    SeqPlacement placement = SeqPlacement::kHeadSharded;

    /** KV head ids on each rank, in on-device order. */
    std::vector<std::vector<int>> kv_heads_per_rank;

    /** Build the head-sharded layout of an (SP, TP) base configuration. */
    static KvLayout base(const model::ModelConfig& m,
                         const parallel::ParallelConfig& cfg);

    /** Build the layout of the SP_TP-ordered shift configuration. */
    static KvLayout shift(const model::ModelConfig& m,
                          const parallel::ParallelConfig& base_cfg);

    /** Build a naive full-TP layout (plain rank-order head sharding). */
    static KvLayout naive_tp(const model::ModelConfig& m, int world);

    /** Build a DP replica-local layout over `world` replicas. */
    static KvLayout dp(const model::ModelConfig& m, int world);

    /** @return number of ranks described. */
    int world() const
    {
        return static_cast<int>(kv_heads_per_rank.size());
    }

    /** @return true when `other` is bit-layout compatible with this. */
    bool invariant_with(const KvLayout& other) const;
};

/**
 * Bytes that must move to convert a cache of `cached_tokens` tokens from
 * layout `from` to layout `to` (0 when invariant). Head-sharded <->
 * replica-local conversion moves the full cache; head-sharded layouts with
 * permuted heads move every misplaced head's slice.
 */
double switch_cost_bytes(const model::ModelConfig& m, const KvLayout& from,
                         const KvLayout& to, std::int64_t cached_tokens);

/** One-line description for diagnostics. */
std::string describe(const KvLayout& layout);

} // namespace shiftpar::kvcache
