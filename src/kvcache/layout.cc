#include "kvcache/layout.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace shiftpar::kvcache {

namespace {

KvLayout
from_head_layout(const parallel::HeadLayout& heads)
{
    KvLayout layout;
    layout.placement = SeqPlacement::kHeadSharded;
    layout.kv_heads_per_rank.resize(static_cast<std::size_t>(heads.world()));
    for (int r = 0; r < heads.world(); ++r)
        layout.kv_heads_per_rank[static_cast<std::size_t>(r)] =
            heads.rank(r).kv;
    return layout;
}

} // namespace

KvLayout
KvLayout::base(const model::ModelConfig& m,
               const parallel::ParallelConfig& cfg)
{
    return from_head_layout(parallel::HeadLayout::base(m, cfg));
}

KvLayout
KvLayout::shift(const model::ModelConfig& m,
                const parallel::ParallelConfig& base_cfg)
{
    return from_head_layout(parallel::HeadLayout::shift(m, base_cfg));
}

KvLayout
KvLayout::naive_tp(const model::ModelConfig& m, int world)
{
    return from_head_layout(parallel::HeadLayout::naive_tp(m, world));
}

KvLayout
KvLayout::dp(const model::ModelConfig& m, int world)
{
    KvLayout layout;
    layout.placement = SeqPlacement::kReplicaLocal;
    layout.kv_heads_per_rank.resize(static_cast<std::size_t>(world));
    std::vector<int> all_heads;
    for (int h = 0; h < m.kv_heads; ++h)
        all_heads.push_back(h);
    for (auto& rank : layout.kv_heads_per_rank)
        rank = all_heads;
    return layout;
}

bool
KvLayout::invariant_with(const KvLayout& other) const
{
    return placement == other.placement &&
           kv_heads_per_rank == other.kv_heads_per_rank;
}

double
switch_cost_bytes(const model::ModelConfig& m, const KvLayout& from,
                  const KvLayout& to, std::int64_t cached_tokens)
{
    if (from.invariant_with(to))
        return 0.0;
    const double per_head_bytes =
        static_cast<double>(cached_tokens) *
        model::kv_head_bytes_per_token(m.head_dim, m.kv_dtype);

    if (from.placement != to.placement) {
        // DP <-> head-sharded: the entire cache must be resharded across
        // the sequence/head boundary (the "complex and costly data
        // movement" of Section 1).
        return static_cast<double>(m.kv_heads) * per_head_bytes;
    }

    SP_ASSERT(from.world() == to.world(),
              "switch cost requires equal world sizes");
    // Count head slices that live on a different rank (or a different
    // on-device position, which still forces a copy) under `to`.
    double moved = 0.0;
    for (int r = 0; r < from.world(); ++r) {
        const auto& a = from.kv_heads_per_rank[static_cast<std::size_t>(r)];
        const auto& b = to.kv_heads_per_rank[static_cast<std::size_t>(r)];
        const std::size_t positions = std::max(a.size(), b.size());
        for (std::size_t p = 0; p < positions; ++p) {
            const bool same =
                p < a.size() && p < b.size() && a[p] == b[p];
            if (!same)
                moved += per_head_bytes;
        }
    }
    return moved;
}

std::string
describe(const KvLayout& layout)
{
    std::ostringstream os;
    os << (layout.placement == SeqPlacement::kReplicaLocal ? "replica-local"
                                                           : "head-sharded")
       << " [";
    for (int r = 0; r < layout.world(); ++r) {
        if (r)
            os << " | ";
        os << "r" << r << ":";
        const auto& heads =
            layout.kv_heads_per_rank[static_cast<std::size_t>(r)];
        for (std::size_t i = 0; i < heads.size(); ++i)
            os << (i ? "," : "") << heads[i];
    }
    os << "]";
    return os.str();
}

} // namespace shiftpar::kvcache
