/**
 * @file
 * Per-request block table: the chain of cache blocks holding one sequence.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "kvcache/block_allocator.h"

namespace shiftpar::kvcache {

/**
 * Tracks the blocks backing one sequence's KV cache.
 *
 * Growth is all-or-nothing: `append_tokens` either acquires every block the
 * new tokens need or acquires none (so a failed admission leaves the pool
 * unchanged and the request can be retried or preempted cleanly).
 */
class BlockTable
{
  public:
    /**
     * Extend the sequence by `tokens` tokens, allocating blocks on demand.
     *
     * @return true on success; false (with no allocation) when the pool
     * cannot supply the required blocks.
     */
    bool append_tokens(std::int64_t tokens, BlockAllocator& allocator);

    /** Release all blocks back to `allocator` and reset to empty. */
    void release(BlockAllocator& allocator);

    /** @return tokens currently stored. */
    std::int64_t num_tokens() const { return num_tokens_; }

    /** @return blocks currently owned. */
    std::int64_t num_blocks() const
    {
        return static_cast<std::int64_t>(blocks_.size());
    }

    /** @return the owned block ids in sequence order. */
    const std::vector<BlockId>& blocks() const { return blocks_; }

  private:
    std::vector<BlockId> blocks_;
    std::int64_t num_tokens_ = 0;
};

} // namespace shiftpar::kvcache
