/**
 * @file
 * Paged KV-cache block pool (vLLM-style PagedAttention allocator).
 *
 * The KV cache is carved into fixed-size blocks of `block_size` tokens;
 * requests own chains of blocks via `BlockTable`. The allocator is a simple
 * free-list with O(1) allocate/free and exact occupancy accounting — enough
 * to reproduce cache-pressure effects (admission control, preemption, the
 * Mooncake overflow of Section 4.2.2) without modeling block contents.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace shiftpar::kvcache {

/** Identifier of one cache block. */
using BlockId = std::int64_t;

/** Fixed-size block pool with a free list. */
class BlockAllocator
{
  public:
    /**
     * @param num_blocks Total blocks in the pool.
     * @param block_size Tokens per block (vLLM default is 16).
     */
    BlockAllocator(std::int64_t num_blocks, int block_size);

    /** @return a free block, or nullopt when the pool is exhausted. */
    std::optional<BlockId> allocate();

    /** Return `block` to the pool; double-free is a panic. */
    void free(BlockId block);

    /** @return true when at least `n` blocks are free. */
    bool can_allocate(std::int64_t n) const { return num_free() >= n; }

    /** @return free block count. */
    std::int64_t num_free() const
    {
        return static_cast<std::int64_t>(free_list_.size());
    }

    /** @return total block count. */
    std::int64_t num_blocks() const { return num_blocks_; }

    /** @return allocated block count. */
    std::int64_t num_used() const { return num_blocks_ - num_free(); }

    /** @return tokens per block. */
    int block_size() const { return block_size_; }

    /** @return blocks needed to hold `tokens` tokens. */
    std::int64_t blocks_for_tokens(std::int64_t tokens) const;

    /** @return fraction of the pool currently allocated, in [0, 1]. */
    double utilization() const;

  private:
    std::int64_t num_blocks_;
    int block_size_;
    std::vector<BlockId> free_list_;
    std::vector<bool> allocated_;
};

} // namespace shiftpar::kvcache
