#include "kvcache/block_allocator.h"

#include "util/logging.h"
#include "util/units.h"

namespace shiftpar::kvcache {

BlockAllocator::BlockAllocator(std::int64_t num_blocks, int block_size)
    : num_blocks_(num_blocks), block_size_(block_size),
      allocated_(static_cast<std::size_t>(num_blocks), false)
{
    SP_ASSERT(num_blocks >= 0 && block_size >= 1);
    free_list_.reserve(static_cast<std::size_t>(num_blocks));
    // Populate so that the first allocations hand out ascending ids.
    for (std::int64_t b = num_blocks - 1; b >= 0; --b)
        free_list_.push_back(b);
}

std::optional<BlockId>
BlockAllocator::allocate()
{
    if (free_list_.empty())
        return std::nullopt;
    const BlockId b = free_list_.back();
    free_list_.pop_back();
    allocated_[static_cast<std::size_t>(b)] = true;
    return b;
}

void
BlockAllocator::free(BlockId block)
{
    SP_ASSERT(block >= 0 && block < num_blocks_, "free of invalid block id");
    SP_ASSERT(allocated_[static_cast<std::size_t>(block)],
              "double free of KV block");
    allocated_[static_cast<std::size_t>(block)] = false;
    free_list_.push_back(block);
}

std::int64_t
BlockAllocator::blocks_for_tokens(std::int64_t tokens) const
{
    return ceil_div(tokens, block_size_);
}

double
BlockAllocator::utilization() const
{
    return num_blocks_ == 0
               ? 0.0
               : static_cast<double>(num_used()) /
                     static_cast<double>(num_blocks_);
}

} // namespace shiftpar::kvcache
