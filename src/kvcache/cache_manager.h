/**
 * @file
 * Engine-level KV cache: block pool + per-request tables + layout.
 *
 * The manager owns the block pool sized from a `MemoryPlan`, maintains one
 * `BlockTable` per live request, and carries the distributed `KvLayout` so
 * the shift engine can assert invariance before reusing the cache under a
 * different execution configuration.
 */

#pragma once

#include <cstdint>
#include <unordered_map>

#include "kvcache/block_allocator.h"
#include "kvcache/block_table.h"
#include "kvcache/layout.h"
#include "obs/trace.h"
#include "parallel/memory.h"

namespace shiftpar::kvcache {

/** Request identifier used by the engine. */
using RequestId = std::int64_t;

/** Shared-prefix identifier (workload-assigned). */
using PrefixKey = std::int64_t;

/** Result of attaching a request to a prefix entry. */
struct PrefixAttach
{
    /** Prefix tokens already cached and reusable right now. */
    std::int64_t hit_tokens = 0;

    /** True when this request should fill the (new or partial) entry. */
    bool is_filler = false;
};

/** Paged KV cache for one engine (one rank group). */
class CacheManager
{
  public:
    /**
     * @param token_capacity Total tokens the cache can hold (from
     *        `parallel::MemoryPlan::kv_token_capacity`).
     * @param layout Distributed layout the cache is written in.
     * @param block_size Tokens per block.
     */
    CacheManager(std::int64_t token_capacity, KvLayout layout,
                 int block_size = 16);

    /**
     * Attach an observability sink (borrowed; null disables tracing).
     * `clock` points at the owning engine's simulated-time variable so
     * eviction events carry timestamps (the cache has no clock of its own).
     */
    void set_trace(obs::TraceSink* sink, obs::EngineId id,
                   const double* clock)
    {
        trace_ = sink;
        trace_id_ = id;
        trace_clock_ = clock;
    }

    /**
     * Reserve cache space for `tokens` new tokens of request `id`
     * (admission for a prefill chunk, or +1 for a decode step). Under
     * pressure, idle prefix-cache entries are evicted LRU-first before
     * failing.
     *
     * @return true on success; false (no state change) when the pool is
     * exhausted — the caller should defer or preempt.
     */
    bool try_append(RequestId id, std::int64_t tokens);

    /** Release all blocks of request `id` (finish or preemption). */
    void release(RequestId id);

    /**
     * Automatic prefix caching (vLLM APC equivalent). Attach request to
     * the shared prefix `key` targeting `target_tokens`: creates the entry
     * on first use (the attaching request becomes the *filler*), pins it
     * (refcount), and reports how many prefix tokens are already cached.
     *
     * @param count_hit Whether the served tokens count towards
     *        `prefix_hit_tokens()`. Pass false on re-attach (a preempted
     *        request resuming) so one request's hit is counted once.
     */
    PrefixAttach attach_prefix(PrefixKey key, std::int64_t target_tokens,
                               bool count_hit = true);

    /**
     * Append `tokens` of freshly prefilled prefix into entry `key` (called
     * by the filler as its prefill progresses). All-or-nothing like
     * `try_append`.
     */
    bool try_append_prefix(PrefixKey key, std::int64_t tokens);

    /** Unpin entry `key` (request finished or was preempted). */
    void detach_prefix(PrefixKey key);

    /** @return tokens currently cached in entry `key` (0 if absent). */
    std::int64_t prefix_cached_tokens(PrefixKey key) const;

    /** @return number of live prefix entries. */
    std::size_t prefix_entry_count() const { return prefixes_.size(); }

    /** @return total prompt tokens served from the prefix cache so far. */
    std::int64_t prefix_hit_tokens() const { return prefix_hit_tokens_; }

    /**
     * Evict unpinned prefix entries (LRU-first) until at least `blocks`
     * blocks are free or nothing evictable remains.
     *
     * @return true when the target is met.
     */
    bool evict_idle_prefixes(std::int64_t blocks);

    /** @return tokens cached for request `id` (0 if unknown). */
    std::int64_t cached_tokens(RequestId id) const;

    /** @return true if `id` currently owns cache blocks. */
    bool contains(RequestId id) const
    {
        return tables_.find(id) != tables_.end();
    }

    /** @return total token capacity. */
    std::int64_t token_capacity() const { return token_capacity_; }

    /** @return tokens worth of blocks still free. */
    std::int64_t free_tokens() const;

    /** @return pool utilization in [0, 1]. */
    double utilization() const { return allocator_.utilization(); }

    /** @return number of live requests holding blocks. */
    std::size_t num_requests() const { return tables_.size(); }

    /** @return the distributed layout of this cache. */
    const KvLayout& layout() const { return layout_; }

    /**
     * Assert that `other` can share this cache without data movement
     * (panics otherwise) — called by the shift engine on every mode switch.
     */
    void assert_invariant_with(const KvLayout& other) const;

  private:
    /** One shared-prefix entry: blocks holding `tokens` cached tokens. */
    struct PrefixEntry
    {
        BlockTable blocks;
        std::int64_t target = 0;  ///< tokens the prefix should reach
        int refs = 0;             ///< live requests pinning the entry
        bool filling = false;     ///< a filler request is active
        std::uint64_t last_use = 0;
    };

    std::int64_t token_capacity_;
    KvLayout layout_;
    BlockAllocator allocator_;
    std::unordered_map<RequestId, BlockTable> tables_;
    std::unordered_map<PrefixKey, PrefixEntry> prefixes_;
    std::int64_t prefix_hit_tokens_ = 0;
    std::uint64_t lru_clock_ = 0;
    obs::TraceSink* trace_ = nullptr;
    obs::EngineId trace_id_ = 0;
    const double* trace_clock_ = nullptr;
};

} // namespace shiftpar::kvcache
