#include "workload/arrival.h"

#include <cmath>

#include "util/logging.h"

namespace shiftpar::workload {

std::vector<double>
fixed_rate_arrivals(double rate, double duration, double start)
{
    SP_ASSERT(rate > 0.0 && duration >= 0.0);
    std::vector<double> times;
    const double gap = 1.0 / rate;
    for (double t = 0.0; t < duration; t += gap)
        times.push_back(start + t);
    return times;
}

std::vector<double>
poisson_arrivals(Rng& rng, double rate, double duration, double start)
{
    return gamma_arrivals(rng, rate, 1.0, duration, start);
}

namespace {

/**
 * Gamma(shape, scale) variate via Marsaglia-Tsang (shape >= 1) with the
 * boost for shape < 1.
 */
double
gamma_variate(Rng& rng, double shape, double scale)
{
    SP_ASSERT(shape > 0.0 && scale > 0.0);
    if (shape < 1.0) {
        const double u = rng.uniform();
        return gamma_variate(rng, shape + 1.0, scale) *
               std::pow(u, 1.0 / shape);
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
        double x;
        double v;
        do {
            x = rng.normal();
            v = 1.0 + c * x;
        } while (v <= 0.0);
        v = v * v * v;
        const double u = rng.uniform();
        if (u < 1.0 - 0.0331 * x * x * x * x)
            return d * v * scale;
        if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
            return d * v * scale;
    }
}

} // namespace

std::vector<double>
gamma_arrivals(Rng& rng, double rate, double burstiness, double duration,
               double start)
{
    SP_ASSERT(rate > 0.0 && burstiness > 0.0 && duration >= 0.0);
    std::vector<double> times;
    // Inter-arrival ~ Gamma(shape=burstiness, mean=1/rate).
    const double scale = 1.0 / (rate * burstiness);
    double t = gamma_variate(rng, burstiness, scale);
    while (t < duration) {
        times.push_back(start + t);
        t += gamma_variate(rng, burstiness, scale);
    }
    return times;
}

std::vector<double>
batch_arrivals(Rng& rng, double batch_size, double period, double duration,
               double start)
{
    SP_ASSERT(batch_size > 0.0 && period > 0.0 && duration >= 0.0);
    std::vector<double> times;
    for (double t = 0.0; t < duration; t += period) {
        // Poisson-distributed batch size with the given mean (inverse CDF
        // by sequential search; means here are small).
        const double u = rng.uniform();
        double p = std::exp(-batch_size);
        double cdf = p;
        int k = 0;
        while (u > cdf && k < 10000) {
            ++k;
            p *= batch_size / k;
            cdf += p;
        }
        for (int i = 0; i < k; ++i)
            times.push_back(start + t);
    }
    return times;
}

} // namespace shiftpar::workload
