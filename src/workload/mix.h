/**
 * @file
 * Mixed production-style dataset (Section 4.1.4-iv, Fig. 16).
 *
 * The paper's production experiment measures latency on "a mixture of
 * ShareGPT, HumanEval and SWEBench" style requests: one-shot coding
 * problems (short prompt, medium output), agentic SWE sessions (long
 * context, medium output, repeated closed-loop calls), and chat turns.
 * This generator mixes the three populations with configurable weights.
 */

#pragma once

#include <vector>

#include "engine/request.h"
#include "util/rng.h"

namespace shiftpar::workload {

/** Knobs for the mixed production dataset. */
struct MixOptions
{
    /** Number of requests to generate. */
    int num_requests = 500;

    /** Mean arrival rate, req/s (Poisson). */
    double rate = 2.0;

    /** Mixture weights: {HumanEval-like, SWEBench-agentic, ShareGPT-chat}. */
    double humaneval_weight = 0.3;
    double swebench_weight = 0.4;
    double sharegpt_weight = 0.3;
};

/** Generate the mixed dataset, sorted by arrival. */
std::vector<engine::RequestSpec> production_mix(Rng& rng,
                                                const MixOptions& opts = {});

} // namespace shiftpar::workload
