/**
 * @file
 * Trace file I/O: load and save request traces as CSV.
 *
 * Format (header required):
 *     arrival_s,prompt_tokens,output_tokens
 *     0.000,4096,250
 *
 * This is the bridge to the paper's artifact: the cleaned Azure/Mooncake
 * traces published at the paper's Zenodo DOI can be converted to this
 * format and replayed with `examples/trace_replay`; the synthetic
 * generators can be exported for inspection with `save_trace`.
 */

#pragma once

#include <string>
#include <vector>

#include "engine/request.h"

namespace shiftpar::workload {

/**
 * Load a trace CSV.
 *
 * Lines are validated (non-negative arrival, positive token counts);
 * malformed input is fatal with a line number. Requests are returned
 * sorted by arrival.
 */
std::vector<engine::RequestSpec> load_trace(const std::string& path);

/** Save a trace CSV (creates parent directories). */
void save_trace(const std::string& path,
                const std::vector<engine::RequestSpec>& reqs);

} // namespace shiftpar::workload
