#include "workload/characterize.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace shiftpar::workload {

WorkloadStats
characterize(const std::vector<engine::RequestSpec>& reqs,
             double bin_seconds)
{
    SP_ASSERT(bin_seconds > 0.0);
    WorkloadStats stats;
    stats.num_requests = reqs.size();
    if (reqs.empty())
        return stats;

    double first = reqs.front().arrival;
    double last = reqs.front().arrival;
    std::size_t with_prefix = 0;
    TimeSeries rate(bin_seconds);
    for (const auto& r : reqs) {
        stats.prompt.add(static_cast<double>(r.prompt_tokens));
        stats.output.add(static_cast<double>(r.output_tokens));
        stats.total_tokens += r.prompt_tokens + r.output_tokens;
        first = std::min(first, r.arrival);
        last = std::max(last, r.arrival);
        with_prefix += r.prefix_id >= 0;
        rate.add(r.arrival, 1.0);
    }
    stats.duration = last - first;
    stats.prefix_fraction =
        static_cast<double>(with_prefix) /
        static_cast<double>(stats.num_requests);
    stats.peak_rate = rate.peak_rate();
    if (stats.duration > 0.0) {
        stats.mean_rate =
            static_cast<double>(stats.num_requests) / stats.duration;
        stats.token_rate =
            static_cast<double>(stats.total_tokens) / stats.duration;
        stats.burstiness = stats.peak_rate / stats.mean_rate;
    }
    return stats;
}

std::string
describe(const WorkloadStats& s)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(1);
    os << s.num_requests << " requests over " << s.duration << " s ("
       << s.mean_rate << " req/s mean, " << s.peak_rate
       << " req/s peak, burstiness " << s.burstiness << "x)\n";
    os << "  prompt tokens: p50 " << s.prompt.percentile(50) << ", p99 "
       << s.prompt.percentile(99) << ", max " << s.prompt.max() << "\n";
    os << "  output tokens: p50 " << s.output.percentile(50) << ", p99 "
       << s.output.percentile(99) << ", max " << s.output.max() << "\n";
    os << "  sustained demand: " << s.token_rate << " tok/s";
    if (s.prefix_fraction > 0.0) {
        os.precision(0);
        os << " (" << 100.0 * s.prefix_fraction
           << "% of requests share prefixes)";
    }
    os << "\n";
    return os.str();
}

} // namespace shiftpar::workload
