#include "workload/agentic.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace shiftpar::workload {

std::vector<engine::RequestSpec>
agentic_sessions(Rng& rng, const AgenticOptions& opts)
{
    SP_ASSERT(opts.num_agents >= 1 && opts.turns_per_agent >= 1);
    SP_ASSERT(opts.base_context >= 1 && opts.turn_delta >= 1);

    std::vector<engine::RequestSpec> reqs;
    reqs.reserve(static_cast<std::size_t>(opts.num_agents) *
                 opts.turns_per_agent);
    const double mu_out = std::log(opts.output_median);

    for (int agent = 0; agent < opts.num_agents; ++agent) {
        Rng agent_rng = rng.split();
        double t = opts.session_stagger * agent;
        std::int64_t context = opts.base_context;
        for (int turn = 0; turn < opts.turns_per_agent; ++turn) {
            engine::RequestSpec r;
            r.arrival = t;
            // The prompt is the accumulated context plus this turn's new
            // tokens; everything but the new tokens is shared with the
            // agent's previous turns.
            r.prompt_tokens = context + opts.turn_delta;
            r.prefix_id = agent;
            r.prefix_tokens = context;
            r.output_tokens = std::max<std::int64_t>(
                1, static_cast<std::int64_t>(std::llround(
                       agent_rng.lognormal(mu_out, opts.output_sigma))));
            reqs.push_back(r);

            // The next turn's context absorbs this prompt and its output.
            context = r.prompt_tokens + r.output_tokens;
            t += agent_rng.exponential(1.0 / opts.think_time) +
                 opts.est_service;
        }
    }
    std::stable_sort(reqs.begin(), reqs.end(),
                     [](const engine::RequestSpec& a,
                        const engine::RequestSpec& b) {
                         return a.arrival < b.arrival;
                     });
    return reqs;
}

} // namespace shiftpar::workload
