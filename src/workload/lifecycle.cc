#include "workload/lifecycle.h"

#include <algorithm>

#include "util/logging.h"
#include "util/rng.h"

namespace shiftpar::workload {

std::vector<engine::CancelEvent>
cancel_stream(const std::vector<engine::RequestSpec>& workload,
              const LifecycleOptions& opts)
{
    std::vector<engine::CancelEvent> out;
    if (opts.cancel_rate <= 0.0)
        return out;
    SP_ASSERT(opts.cancel_rate <= 1.0 && opts.cancel_delay_mean > 0.0,
              "cancel_rate must be a probability and the delay mean "
              "positive");

    // Cancel indices address positions in the arrival-sorted workload,
    // because that order is how the router assigns request ids.
    std::vector<std::size_t> order(workload.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return workload[a].arrival < workload[b].arrival;
                     });

    for (std::size_t pos = 0; pos < order.size(); ++pos) {
        // One decorrelated stream per request position: the decision for
        // request i never shifts when other requests are added or
        // removed behind it, and is independent of iteration order.
        Rng rng(opts.seed ^
                (0x9E3779B97F4A7C15ULL *
                 static_cast<std::uint64_t>(pos + 1)));
        if (!rng.bernoulli(opts.cancel_rate))
            continue;
        engine::CancelEvent ev;
        ev.index = static_cast<std::int64_t>(pos);
        ev.at = workload[order[pos]].arrival +
                rng.exponential(1.0 / opts.cancel_delay_mean);
        out.push_back(ev);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const engine::CancelEvent& a,
                        const engine::CancelEvent& b) {
                         return a.at < b.at;
                     });
    return out;
}

void
apply_deadlines(std::vector<engine::RequestSpec>* workload,
                const LifecycleOptions& opts)
{
    SP_ASSERT(workload != nullptr);
    if (opts.deadline <= 0.0)
        return;
    for (engine::RequestSpec& spec : *workload) {
        spec.deadline =
            spec.arrival + opts.deadline +
            opts.deadline_per_token *
                static_cast<double>(spec.output_tokens);
    }
}

} // namespace shiftpar::workload
