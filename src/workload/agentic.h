/**
 * @file
 * Agentic-session workload with shared, growing prefixes.
 *
 * Models the paper's motivating coding-agent pattern (Section 2.1): each
 * agent issues a closed loop of requests whose prompts share an
 * ever-growing context (system prompt + repo + conversation so far). The
 * generated requests carry `prefix_id`/`prefix_tokens` so deployments with
 * automatic prefix caching can serve the shared part from cache.
 */

#pragma once

#include <vector>

#include "engine/request.h"
#include "util/rng.h"

namespace shiftpar::workload {

/** Knobs for the agentic-session generator. */
struct AgenticOptions
{
    /** Number of concurrent agent sessions. */
    int num_agents = 16;

    /** Requests issued by each agent. */
    int turns_per_agent = 8;

    /** Initial shared context (system prompt + repo), tokens. */
    std::int64_t base_context = 6000;

    /** New prompt tokens added per turn (tool output, user message). */
    std::int64_t turn_delta = 600;

    /** Median output tokens per turn. */
    double output_median = 250.0;

    /** Log-space spread of output lengths. */
    double output_sigma = 0.4;

    /** Mean agent think time between turns, seconds. */
    double think_time = 2.0;

    /** Estimated service time per turn, seconds (arrival spacing). */
    double est_service = 4.0;

    /** Spacing between session starts, seconds. */
    double session_stagger = 1.0;
};

/**
 * Generate the sessions. Turn t of an agent has prompt = base_context +
 * t*(turn_delta + prior output) with everything except the final
 * `turn_delta` marked as the shared prefix; `prefix_id` is the agent
 * index. Sorted by arrival.
 */
std::vector<engine::RequestSpec>
agentic_sessions(Rng& rng, const AgenticOptions& opts = {});

} // namespace shiftpar::workload
