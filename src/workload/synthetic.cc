#include "workload/synthetic.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace shiftpar::workload {

SizeSampler
fixed_size(std::int64_t prompt, std::int64_t output)
{
    SP_ASSERT(prompt >= 1 && output >= 1);
    return [prompt, output](Rng&) { return SizeSpec{prompt, output}; };
}

SizeSampler
lognormal_size(double prompt_median, double prompt_sigma,
               double output_median, double output_sigma,
               std::int64_t min_tokens, std::int64_t max_prompt,
               std::int64_t max_output)
{
    SP_ASSERT(prompt_median >= 1.0 && output_median >= 1.0);
    const double mu_p = std::log(prompt_median);
    const double mu_o = std::log(output_median);
    return [=](Rng& rng) {
        const auto clamp = [&](double v, std::int64_t hi) {
            return std::clamp<std::int64_t>(
                static_cast<std::int64_t>(std::llround(v)), min_tokens, hi);
        };
        SizeSpec s;
        s.prompt = clamp(rng.lognormal(mu_p, prompt_sigma), max_prompt);
        s.output = clamp(rng.lognormal(mu_o, output_sigma), max_output);
        return s;
    };
}

std::vector<engine::RequestSpec>
make_requests(const std::vector<double>& arrivals, Rng& rng,
              const SizeSampler& sampler)
{
    std::vector<engine::RequestSpec> reqs;
    reqs.reserve(arrivals.size());
    for (double t : arrivals) {
        const SizeSpec s = sampler(rng);
        reqs.push_back({t, s.prompt, s.output});
    }
    return reqs;
}

std::vector<engine::RequestSpec>
uniform_batch(int n, std::int64_t prompt, std::int64_t output)
{
    std::vector<engine::RequestSpec> reqs;
    reqs.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        reqs.push_back({0.0, prompt, output});
    return reqs;
}

std::int64_t
total_tokens(const std::vector<engine::RequestSpec>& reqs)
{
    std::int64_t total = 0;
    for (const auto& r : reqs)
        total += r.prompt_tokens + r.output_tokens;
    return total;
}

} // namespace shiftpar::workload
