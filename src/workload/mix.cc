#include "workload/mix.h"

#include "util/logging.h"
#include "workload/synthetic.h"

namespace shiftpar::workload {

std::vector<engine::RequestSpec>
production_mix(Rng& rng, const MixOptions& opts)
{
    SP_ASSERT(opts.num_requests >= 0 && opts.rate > 0.0);
    Rng arrivals_rng = rng.split();
    Rng sizes_rng = rng.split();

    // Population samplers (medians/sigmas chosen to mimic the datasets:
    // HumanEval: short one-shot problems; SWEBench agent: long repo
    // context; ShareGPT: multi-turn chat).
    const SizeSampler humaneval = lognormal_size(350.0, 0.4, 250.0, 0.5);
    const SizeSampler swebench = lognormal_size(8000.0, 0.7, 500.0, 0.6);
    const SizeSampler sharegpt = lognormal_size(1200.0, 0.8, 300.0, 0.7);
    const std::vector<double> weights = {
        opts.humaneval_weight, opts.swebench_weight, opts.sharegpt_weight};

    std::vector<engine::RequestSpec> reqs;
    reqs.reserve(static_cast<std::size_t>(opts.num_requests));
    double t = 0.0;
    for (int i = 0; i < opts.num_requests; ++i) {
        t += arrivals_rng.exponential(opts.rate);
        SizeSpec s;
        switch (sizes_rng.categorical(weights)) {
          case 0: s = humaneval(sizes_rng); break;
          case 1: s = swebench(sizes_rng); break;
          default: s = sharegpt(sizes_rng); break;
        }
        reqs.push_back({t, s.prompt, s.output});
    }
    return reqs;
}

} // namespace shiftpar::workload
