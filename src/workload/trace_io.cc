#include "workload/trace_io.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/logging.h"
#include "util/table.h"

namespace shiftpar::workload {

namespace {

/** Split one CSV line on commas (the trace format never quotes). */
std::vector<std::string>
split_fields(const std::string& line)
{
    std::vector<std::string> fields;
    std::string field;
    std::istringstream is(line);
    while (std::getline(is, field, ','))
        fields.push_back(field);
    return fields;
}

double
parse_double(const std::string& s, const std::string& path, int lineno)
{
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str())
        fatal(path + ":" + std::to_string(lineno) + ": bad number '" + s +
              "'");
    return v;
}

} // namespace

std::vector<engine::RequestSpec>
load_trace(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file '" + path + "'");

    std::string line;
    int lineno = 0;
    // Header.
    if (!std::getline(in, line))
        fatal(path + ": empty trace file");
    ++lineno;
    if (line.rfind("arrival_s", 0) != 0)
        fatal(path + ": expected header 'arrival_s,prompt_tokens,"
                     "output_tokens', got '" + line + "'");

    std::vector<engine::RequestSpec> reqs;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        const auto fields = split_fields(line);
        if (fields.size() != 3)
            fatal(path + ":" + std::to_string(lineno) +
                  ": expected 3 fields, got " +
                  std::to_string(fields.size()));
        engine::RequestSpec r;
        r.arrival = parse_double(fields[0], path, lineno);
        r.prompt_tokens =
            static_cast<std::int64_t>(parse_double(fields[1], path, lineno));
        r.output_tokens =
            static_cast<std::int64_t>(parse_double(fields[2], path, lineno));
        if (r.arrival < 0.0 || r.prompt_tokens < 1 || r.output_tokens < 1)
            fatal(path + ":" + std::to_string(lineno) +
                  ": invalid request (arrival >= 0, tokens >= 1 required)");
        reqs.push_back(r);
    }
    std::stable_sort(reqs.begin(), reqs.end(),
                     [](const engine::RequestSpec& a,
                        const engine::RequestSpec& b) {
                         return a.arrival < b.arrival;
                     });
    return reqs;
}

void
save_trace(const std::string& path,
           const std::vector<engine::RequestSpec>& reqs)
{
    CsvWriter csv(path, {"arrival_s", "prompt_tokens", "output_tokens"});
    if (!csv.ok())
        fatal("cannot write trace file '" + path + "'");
    for (const auto& r : reqs) {
        csv.add_row(std::vector<std::string>{
            Table::fmt(r.arrival, 6), std::to_string(r.prompt_tokens),
            std::to_string(r.output_tokens)});
    }
}

} // namespace shiftpar::workload
