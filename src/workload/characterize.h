/**
 * @file
 * Workload characterization: the summary statistics the paper's Fig. 8
 * reports for its traces, computed for any request list.
 */

#pragma once

#include <string>
#include <vector>

#include "engine/request.h"
#include "util/stats.h"

namespace shiftpar::workload {

/** Aggregate statistics of one workload. */
struct WorkloadStats
{
    std::size_t num_requests = 0;

    /** Prompt/output token distributions. */
    Summary prompt;
    Summary output;

    /** Total tokens (prompt + output). */
    std::int64_t total_tokens = 0;

    /** Workload time span (first to last arrival), seconds. */
    double duration = 0.0;

    /** Mean arrival rate, req/s (0 when duration is 0). */
    double mean_rate = 0.0;

    /** Peak arrival rate over `bin_seconds` bins, req/s. */
    double peak_rate = 0.0;

    /** Peak-to-mean ratio — the burstiness signature of Fig. 8. */
    double burstiness = 0.0;

    /** Sustained token demand: total tokens / duration, tokens/s. */
    double token_rate = 0.0;

    /** Fraction of requests carrying a shared prefix. */
    double prefix_fraction = 0.0;
};

/**
 * Characterize a workload.
 *
 * @param bin_seconds Arrival-rate bin width for the peak/burstiness stats.
 */
WorkloadStats characterize(const std::vector<engine::RequestSpec>& reqs,
                           double bin_seconds = 10.0);

/** Multi-line human-readable report of the stats. */
std::string describe(const WorkloadStats& stats);

} // namespace shiftpar::workload
