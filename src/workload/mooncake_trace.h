/**
 * @file
 * Synthetic Mooncake conversation trace (Fig. 8(b), Fig. 10, Fig. 11(b)).
 *
 * The paper replays 15 minutes of Moonshot AI's Mooncake conversation
 * trace (FAST'25 release): a *steady* arrival of medium-input, long-output
 * chat requests — "a batch of nearly 9 requests is sent every 3 seconds"
 * (Fig. 8 caption). The sustained token rate is heavy enough that DP and TP
 * fall behind (growing wait times / KV overflow) while SP and Shift keep
 * up, and the paper additionally enables FP8 KV cache to fit it at all.
 */

#pragma once

#include <vector>

#include "engine/request.h"
#include "util/rng.h"

namespace shiftpar::workload {

/** Knobs for the synthetic Mooncake conversation trace. */
struct MooncakeTraceOptions
{
    /** Trace duration, seconds (paper replays 15 minutes). */
    double duration = 900.0;

    /** Mean requests per batch (Fig. 8(b): ~9). */
    double batch_size = 9.0;

    /** Seconds between batches (Fig. 8(b): 3 s). */
    double period = 3.0;

    /** Prompt length distribution (multi-turn chat context). */
    double prompt_median = 3500.0;
    double prompt_sigma = 0.9;

    /** Output length distribution (long assistant turns). */
    double output_median = 500.0;
    double output_sigma = 0.5;
};

/** Generate the synthetic Mooncake conversation trace, sorted by arrival. */
std::vector<engine::RequestSpec>
mooncake_conversation_trace(Rng& rng, const MooncakeTraceOptions& opts = {});

} // namespace shiftpar::workload
