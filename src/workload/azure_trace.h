/**
 * @file
 * Synthetic Azure LLM Code trace (Fig. 8(a), Fig. 9, Fig. 11(a)).
 *
 * The paper replays 15 minutes of the Azure LLM inference *code* trace
 * (Patel et al., Splitwise, ISCA'24) — real-world agentic code completion.
 * The published trace characteristics we reproduce: strongly bursty
 * arrivals with silent regions and a few prominent bursts (the paper calls
 * out three), medium-to-long prompts (code context, heavy tail) and short
 * outputs (completions). We synthesize an equivalent trace from those
 * marginals: an on/off arrival process with a handful of large bursts
 * layered on top, lognormal prompt lengths, short lognormal outputs.
 */

#pragma once

#include <vector>

#include "engine/request.h"
#include "util/rng.h"

namespace shiftpar::workload {

/** Knobs for the synthetic Azure code trace. */
struct AzureTraceOptions
{
    /** Trace duration, seconds (paper replays 15 minutes). */
    double duration = 900.0;

    /** Mean request rate inside active (on) periods, req/s. */
    double active_rate = 3.0;

    /** Mean active-period length, seconds. */
    double active_mean = 20.0;

    /** Mean silent-period length, seconds. */
    double silent_mean = 12.0;

    /** Number of prominent large bursts (paper: three). */
    int num_big_bursts = 3;

    /** Request rate inside a big burst, req/s. */
    double big_burst_rate = 25.0;

    /** Big-burst duration, seconds. */
    double big_burst_duration = 15.0;

    /** Prompt length distribution (code context, heavy-tailed). */
    double prompt_median = 2500.0;
    double prompt_sigma = 1.0;

    /** Output length distribution (short completions). */
    double output_median = 60.0;
    double output_sigma = 0.9;
};

/** Generate the synthetic Azure code trace, sorted by arrival. */
std::vector<engine::RequestSpec>
azure_code_trace(Rng& rng, const AzureTraceOptions& opts = {});

} // namespace shiftpar::workload
