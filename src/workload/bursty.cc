#include "workload/bursty.h"

#include <algorithm>

#include "util/logging.h"
#include "workload/arrival.h"
#include "workload/synthetic.h"

namespace shiftpar::workload {

std::vector<double>
burst_starts(const BurstyOptions& opts)
{
    SP_ASSERT(opts.num_bursts >= 0);
    std::vector<double> starts;
    // Center the bursts in equal segments of the run, leaving a quiet
    // lead-in and tail.
    const double seg =
        opts.duration / static_cast<double>(opts.num_bursts + 1);
    for (int i = 1; i <= opts.num_bursts; ++i)
        starts.push_back(seg * i - opts.burst_duration / 2.0);
    return starts;
}

std::vector<engine::RequestSpec>
bursty_workload(Rng& rng, const BurstyOptions& opts)
{
    SP_ASSERT(opts.duration > 0.0);
    Rng arrivals_rng = rng.split();
    Rng sizes_rng = rng.split();

    const SizeSampler interactive =
        lognormal_size(opts.interactive_prompt_median, opts.sigma,
                       opts.interactive_output_median, opts.sigma);
    const SizeSampler batch =
        lognormal_size(opts.batch_prompt_median, opts.sigma,
                       opts.batch_output_median, opts.sigma);

    // Steady interactive stream over the full duration.
    std::vector<engine::RequestSpec> reqs = make_requests(
        poisson_arrivals(arrivals_rng, opts.base_rate, opts.duration),
        sizes_rng, interactive);

    // Throughput bursts.
    for (double start : burst_starts(opts)) {
        const auto burst = make_requests(
            gamma_arrivals(arrivals_rng, opts.burst_rate,
                           /*burstiness=*/0.5, opts.burst_duration, start),
            sizes_rng, batch);
        reqs.insert(reqs.end(), burst.begin(), burst.end());
    }

    std::stable_sort(reqs.begin(), reqs.end(),
                     [](const engine::RequestSpec& a,
                        const engine::RequestSpec& b) {
                         return a.arrival < b.arrival;
                     });
    return reqs;
}

} // namespace shiftpar::workload
