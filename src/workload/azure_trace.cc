#include "workload/azure_trace.h"

#include <algorithm>

#include "util/logging.h"
#include "workload/arrival.h"
#include "workload/synthetic.h"

namespace shiftpar::workload {

std::vector<engine::RequestSpec>
azure_code_trace(Rng& rng, const AzureTraceOptions& opts)
{
    SP_ASSERT(opts.duration > 0.0);
    Rng on_off_rng = rng.split();
    Rng arrivals_rng = rng.split();
    Rng sizes_rng = rng.split();

    const SizeSampler sizes =
        lognormal_size(opts.prompt_median, opts.prompt_sigma,
                       opts.output_median, opts.output_sigma,
                       /*min_tokens=*/1, /*max_prompt=*/32768,
                       /*max_output=*/1024);

    // On/off modulated arrivals: agents work in closed loops, producing
    // clustered activity separated by silent regions.
    std::vector<engine::RequestSpec> reqs;
    double t = 0.0;
    bool active = true;
    while (t < opts.duration) {
        const double span = active
                                ? on_off_rng.exponential(1.0 / opts.active_mean)
                                : on_off_rng.exponential(1.0 / opts.silent_mean);
        const double end = std::min(t + span, opts.duration);
        if (active && end > t) {
            const auto burst = make_requests(
                gamma_arrivals(arrivals_rng, opts.active_rate,
                               /*burstiness=*/0.6, end - t, t),
                sizes_rng, sizes);
            reqs.insert(reqs.end(), burst.begin(), burst.end());
        }
        t = end;
        active = !active;
    }

    // Prominent large bursts (the paper highlights three in Fig. 9).
    const double seg =
        opts.duration / static_cast<double>(opts.num_big_bursts + 1);
    for (int i = 1; i <= opts.num_big_bursts; ++i) {
        const double start = seg * i;
        const auto burst = make_requests(
            gamma_arrivals(arrivals_rng, opts.big_burst_rate,
                           /*burstiness=*/0.5, opts.big_burst_duration,
                           start),
            sizes_rng, sizes);
        reqs.insert(reqs.end(), burst.begin(), burst.end());
    }

    std::stable_sort(reqs.begin(), reqs.end(),
                     [](const engine::RequestSpec& a,
                        const engine::RequestSpec& b) {
                         return a.arrival < b.arrival;
                     });
    return reqs;
}

} // namespace shiftpar::workload
