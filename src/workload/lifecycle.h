/**
 * @file
 * Client-side request lifecycle synthesis: cancellation streams and
 * per-request deadlines.
 *
 * Real serving traffic is not fire-and-forget: clients abort requests
 * (closed tabs, upstream timeouts) and stop waiting past a latency budget.
 * This module derives both behaviors deterministically from a workload —
 * each request's cancel decision and delay come from a seed-derived
 * per-request stream, so the same workload + options always produce the
 * same cancel stream regardless of thread count or platform — and stamps
 * absolute completion deadlines onto specs for the scheduler's expiry
 * sweep.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "engine/overload.h"
#include "engine/request.h"

namespace shiftpar::workload {

/** Knobs for synthesizing client lifecycle behavior over a workload. */
struct LifecycleOptions
{
    /**
     * Probability that a request's client aborts it (0 disables the
     * cancel stream entirely).
     */
    double cancel_rate = 0.0;

    /**
     * Mean patience before an abort, seconds: a cancelled request's abort
     * fires an exponential delay after its arrival.
     */
    double cancel_delay_mean = 1.0;

    /** Seed for the per-request decision/delay streams. */
    std::uint64_t seed = 1;

    /**
     * Completion-latency budget, seconds (0 leaves deadlines unset): each
     * request's absolute deadline becomes arrival + deadline
     * (+ deadline_per_token x output_tokens).
     */
    double deadline = 0.0;

    /** Extra per-output-token deadline allowance, seconds. */
    double deadline_per_token = 0.0;
};

/**
 * Derive the deterministic cancellation stream for `workload` under
 * `opts`: request i (by position in the arrival-sorted workload — the id
 * `Router::run_workload` assigns) aborts with probability `cancel_rate`
 * at arrival + Exp(mean = cancel_delay_mean). Entries come out sorted by
 * abort time. Empty when `cancel_rate` is 0.
 */
std::vector<engine::CancelEvent> cancel_stream(
    const std::vector<engine::RequestSpec>& workload,
    const LifecycleOptions& opts);

/**
 * Stamp absolute completion deadlines onto every spec in `workload`:
 * deadline = arrival + opts.deadline + opts.deadline_per_token x
 * output_tokens. No-op when `opts.deadline` is 0.
 */
void apply_deadlines(std::vector<engine::RequestSpec>* workload,
                     const LifecycleOptions& opts);

} // namespace shiftpar::workload
