/**
 * @file
 * Composable synthetic request generation (Section 4.3's parameterized
 * benchmarking inputs).
 *
 * A workload = an arrival process (see arrival.h) x a size sampler. Fixed
 * sizes reproduce the paper's uniform benchmarks (e.g. 4k in / 250 out);
 * lognormal samplers model realistic long-tailed request sizes.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "engine/request.h"
#include "util/rng.h"

namespace shiftpar::workload {

/** Prompt/output lengths for one request. */
struct SizeSpec
{
    std::int64_t prompt = 0;
    std::int64_t output = 0;
};

/** Draws one request's sizes. */
using SizeSampler = std::function<SizeSpec(Rng&)>;

/** Sampler returning constant sizes. */
SizeSampler fixed_size(std::int64_t prompt, std::int64_t output);

/**
 * Sampler with independent lognormal prompt and output lengths.
 *
 * @param prompt_median Median prompt tokens.
 * @param prompt_sigma Log-space sigma of the prompt length.
 * @param output_median Median output tokens.
 * @param output_sigma Log-space sigma of the output length.
 * @param min_tokens Lower clamp applied to both lengths.
 * @param max_prompt Upper clamp for prompts.
 * @param max_output Upper clamp for outputs.
 */
SizeSampler lognormal_size(double prompt_median, double prompt_sigma,
                           double output_median, double output_sigma,
                           std::int64_t min_tokens = 1,
                           std::int64_t max_prompt = 131072,
                           std::int64_t max_output = 8192);

/** Build requests by pairing each arrival time with a sampled size. */
std::vector<engine::RequestSpec>
make_requests(const std::vector<double>& arrivals, Rng& rng,
              const SizeSampler& sampler);

/** Uniform benchmark: `n` identical requests, all arriving at t = 0. */
std::vector<engine::RequestSpec>
uniform_batch(int n, std::int64_t prompt, std::int64_t output);

/** Total tokens (prompt + output) across a workload. */
std::int64_t total_tokens(const std::vector<engine::RequestSpec>& reqs);

} // namespace shiftpar::workload
