#include "workload/mooncake_trace.h"

#include "util/logging.h"
#include "workload/arrival.h"
#include "workload/synthetic.h"

namespace shiftpar::workload {

std::vector<engine::RequestSpec>
mooncake_conversation_trace(Rng& rng, const MooncakeTraceOptions& opts)
{
    SP_ASSERT(opts.duration > 0.0 && opts.period > 0.0);
    Rng arrivals_rng = rng.split();
    Rng sizes_rng = rng.split();

    const SizeSampler sizes =
        lognormal_size(opts.prompt_median, opts.prompt_sigma,
                       opts.output_median, opts.output_sigma,
                       /*min_tokens=*/1, /*max_prompt=*/65536,
                       /*max_output=*/4096);

    return make_requests(batch_arrivals(arrivals_rng, opts.batch_size,
                                        opts.period, opts.duration),
                         sizes_rng, sizes);
}

} // namespace shiftpar::workload
