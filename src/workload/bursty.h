/**
 * @file
 * Bursty mixed workload (Fig. 2 / Fig. 7 / Table 5).
 *
 * Models the paper's production-like pattern: a steady low-rate stream of
 * latency-sensitive interactive requests with periodic high-rate bursts of
 * throughput-sensitive batch requests, built with the same gamma-modulated
 * arrival mechanics as vLLM's burstiness benchmark.
 */

#pragma once

#include <vector>

#include "engine/request.h"
#include "util/rng.h"

namespace shiftpar::workload {

/** Knobs for the bursty generator. */
struct BurstyOptions
{
    /** Total experiment duration, seconds. */
    double duration = 600.0;

    /** Steady interactive stream rate, req/s. */
    double base_rate = 0.5;

    /** Number of high-traffic bursts, evenly spaced. */
    int num_bursts = 4;

    /** Duration of each burst, seconds. */
    double burst_duration = 25.0;

    /** Request rate inside a burst, req/s. */
    double burst_rate = 25.0;

    /** Interactive request sizes (agentic/chat-like). */
    double interactive_prompt_median = 1200.0;
    double interactive_output_median = 250.0;

    /** Batch request sizes (summarization/analysis-like). */
    double batch_prompt_median = 3000.0;
    double batch_output_median = 150.0;

    /** Log-space spread of all sizes. */
    double sigma = 0.6;
};

/**
 * Generate the bursty workload; interactive requests arrive throughout,
 * batch requests only inside bursts. Sorted by arrival.
 */
std::vector<engine::RequestSpec> bursty_workload(Rng& rng,
                                                 const BurstyOptions& opts);

/** Burst window start times for the given options (for plotting). */
std::vector<double> burst_starts(const BurstyOptions& opts);

} // namespace shiftpar::workload
