/**
 * @file
 * Request arrival processes.
 *
 * Every generator returns ascending arrival times within [start, start +
 * duration). The gamma-modulated process reproduces vLLM's serving-benchmark
 * `--burstiness` knob (inter-arrival times ~ Gamma(shape=burstiness,
 * mean=1/rate); burstiness < 1 clusters arrivals, 1 = Poisson).
 */

#pragma once

#include <vector>

#include "util/rng.h"

namespace shiftpar::workload {

/** Evenly spaced arrivals at `rate` requests/second. */
std::vector<double> fixed_rate_arrivals(double rate, double duration,
                                        double start = 0.0);

/** Poisson arrivals at `rate` requests/second. */
std::vector<double> poisson_arrivals(Rng& rng, double rate, double duration,
                                     double start = 0.0);

/**
 * Gamma-renewal arrivals (vLLM benchmark semantics).
 *
 * @param rate Mean request rate, req/s.
 * @param burstiness Gamma shape; 1 = Poisson, < 1 = bursty.
 */
std::vector<double> gamma_arrivals(Rng& rng, double rate, double burstiness,
                                   double duration, double start = 0.0);

/**
 * Batched arrivals: every `period` seconds a batch of ~`batch_size`
 * requests lands simultaneously (Poisson-distributed batch size) — the
 * Mooncake conversation pattern of Fig. 8(b).
 */
std::vector<double> batch_arrivals(Rng& rng, double batch_size, double period,
                                   double duration, double start = 0.0);

} // namespace shiftpar::workload
