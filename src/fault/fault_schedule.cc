#include "fault/fault_schedule.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>

#include "util/logging.h"
#include "util/rng.h"

namespace shiftpar::fault {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Split `s` on `sep`, dropping empty pieces. */
std::vector<std::string>
split(const std::string& s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t end = s.find(sep, start);
        const std::string piece =
            s.substr(start, end == std::string::npos ? end : end - start);
        if (!piece.empty())
            out.push_back(piece);
        if (end == std::string::npos)
            break;
        start = end + 1;
    }
    return out;
}

/** Strip leading/trailing whitespace. */
std::string
trim(const std::string& s)
{
    const std::size_t first = s.find_first_not_of(" \t\n\r");
    if (first == std::string::npos)
        return "";
    const std::size_t last = s.find_last_not_of(" \t\n\r");
    return s.substr(first, last - first + 1);
}

/** Key=value pairs of one clause body; fatal() on a pair without '='. */
std::map<std::string, std::string>
parse_pairs(const std::string& label, const std::string& body)
{
    std::map<std::string, std::string> pairs;
    for (const std::string& item : split(body, ',')) {
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 >= item.size()) {
            fatal("--faults: malformed key=value token '" + item +
                  "' in clause " + label);
        }
        const std::string key = item.substr(0, eq);
        if (!pairs.emplace(key, item.substr(eq + 1)).second) {
            fatal("--faults: duplicate key '" + key + "' in clause " +
                  label);
        }
    }
    return pairs;
}

/** A clause's parsed keys with checked typed extraction. */
class Keys
{
  public:
    Keys(std::string clause, std::map<std::string, std::string> pairs)
        : clause_(std::move(clause)), pairs_(std::move(pairs))
    {
    }

    bool has(const std::string& key) const { return pairs_.count(key) > 0; }

    double
    number(const std::string& key)
    {
        const std::string& value = raw(key);
        errno = 0;
        char* end = nullptr;
        const double v = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
            fatal("--faults: key '" + key + "' expects a number, got '" +
                  value + "' in clause " + clause_);
        }
        return v;
    }

    double
    number_at_least(const std::string& key, double min)
    {
        const double v = number(key);
        if (!(v >= min)) {
            fatal("--faults: key '" + key + "' must be >= " +
                  std::to_string(min) + ", got '" + raw(key) +
                  "' in clause " + clause_);
        }
        return v;
    }

    int
    index(const std::string& key)
    {
        const double v = number(key);
        const int i = static_cast<int>(v);
        if (v < 0 || static_cast<double>(i) != v) {
            fatal("--faults: key '" + key +
                  "' expects a non-negative integer, got '" + raw(key) +
                  "' in clause " + clause_);
        }
        return i;
    }

    std::uint64_t
    seed(const std::string& key)
    {
        const std::string& value = raw(key);
        errno = 0;
        char* end = nullptr;
        const unsigned long long v =
            std::strtoull(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
            fatal("--faults: key '" + key + "' expects an integer, got '" +
                  value + "' in clause " + clause_);
        }
        return v;
    }

    /** All keys consumed? fatal() naming the first leftover otherwise. */
    void
    finish() const
    {
        for (const auto& [key, value] : pairs_) {
            if (!used_.count(key)) {
                fatal("--faults: unknown key '" + key + "' in clause " +
                      clause_);
            }
        }
    }

  private:
    const std::string&
    raw(const std::string& key)
    {
        const auto it = pairs_.find(key);
        if (it == pairs_.end()) {
            fatal("--faults: clause " + clause_ + " needs key '" + key +
                  "'");
        }
        used_.insert(key);
        return it->second;
    }

    std::string clause_;
    std::map<std::string, std::string> pairs_;
    std::set<std::string> used_;
};

/** Read the engine=/rank= address into `ev`; fatal() when both given. */
void
parse_target(Keys& keys, const std::string& label, FaultEvent* ev,
             bool required)
{
    const bool has_engine = keys.has("engine");
    const bool has_rank = keys.has("rank");
    if (has_engine && has_rank) {
        fatal("--faults: clause " + label +
              " must address engine= or rank=, not both");
    }
    if (has_engine)
        ev->engine = keys.index("engine");
    else if (has_rank)
        ev->rank = keys.index("rank");
    else if (required) {
        fatal("--faults: clause " + label +
              " needs an engine= or rank= target");
    }
}

} // namespace

FaultSchedule
parse_fault_spec(const std::string& spec)
{
    FaultSchedule schedule;
    // Clauses are numbered by their 1-based position in the raw spec —
    // including blank ones — so an error in "a;;b" points at clause 3.
    std::size_t position = 0;
    std::size_t start = 0;
    std::vector<std::pair<std::size_t, std::string>> clauses;
    while (start <= spec.size()) {
        const std::size_t end = spec.find(';', start);
        const std::string piece = trim(spec.substr(
            start, end == std::string::npos ? end : end - start));
        ++position;
        // Blank clauses (trailing ';', doubled separators, whitespace)
        // are tolerated and skipped.
        if (!piece.empty())
            clauses.emplace_back(position, piece);
        if (end == std::string::npos)
            break;
        start = end + 1;
    }
    for (const auto& [index, clause] : clauses) {
        // Errors name the clause by index and text, so a typo in a long
        // multi-clause spec is findable: "in clause 3 ('fail:at=5')".
        const std::string label =
            std::to_string(index) + " ('" + clause + "')";
        const std::size_t colon = clause.find(':');
        if (colon == std::string::npos) {
            fatal("--faults: clause " + label +
                  " is missing its 'kind:' prefix");
        }
        const std::string kind = clause.substr(0, colon);
        Keys keys(label, parse_pairs(label, clause.substr(colon + 1)));

        if (kind == "fail") {
            FaultEvent ev;
            ev.kind = FaultKind::kFail;
            parse_target(keys, label, &ev, /*required=*/true);
            ev.at = keys.number_at_least("at", 0.0);
            ev.recover_at = keys.has("recover")
                                ? keys.number_at_least("recover", 0.0)
                                : kInf;
            if (ev.recover_at <= ev.at) {
                fatal("--faults: recover= must be after at= in clause " +
                      label);
            }
            keys.finish();
            schedule.events.push_back(ev);
        } else if (kind == "straggle" || kind == "degrade") {
            FaultEvent ev;
            ev.kind = kind == "straggle" ? FaultKind::kStraggle
                                         : FaultKind::kDegrade;
            parse_target(keys, label, &ev,
                         /*required=*/ev.kind == FaultKind::kStraggle);
            ev.at = keys.number_at_least("at", 0.0);
            ev.recover_at = keys.number_at_least("until", 0.0);
            if (ev.recover_at <= ev.at) {
                fatal("--faults: until= must be after at= in clause " +
                      label);
            }
            ev.factor = keys.number(
                ev.kind == FaultKind::kStraggle ? "slow" : "factor");
            if (!(ev.factor > 1.0)) {
                fatal("--faults: slowdown factor must be > 1 in clause " +
                      label);
            }
            keys.finish();
            schedule.events.push_back(ev);
        } else if (kind == "drain") {
            FaultEvent ev;
            ev.kind = FaultKind::kDrain;
            parse_target(keys, label, &ev, /*required=*/true);
            ev.at = keys.number_at_least("at", 0.0);
            ev.recover_at = keys.has("resume")
                                ? keys.number_at_least("resume", 0.0)
                                : kInf;
            if (ev.recover_at <= ev.at) {
                fatal("--faults: resume= must be after at= in clause " +
                      label);
            }
            keys.finish();
            schedule.events.push_back(ev);
        } else if (kind == "mtbf") {
            MtbfSpec m;
            m.mean = keys.number("mean");
            m.mttr = keys.number("mttr");
            m.duration = keys.number("duration");
            if (keys.has("seed"))
                m.seed = keys.seed("seed");
            if (!(m.mean > 0.0) || !(m.mttr > 0.0) || !(m.duration > 0.0)) {
                fatal("--faults: mtbf clause needs positive mean=, mttr=, "
                      "and duration= in clause " + label);
            }
            keys.finish();
            schedule.mtbf.push_back(m);
        } else {
            fatal("--faults: unknown clause kind '" + kind +
                  "' in clause " + label +
                  " (expected fail/straggle/degrade/drain/mtbf)");
        }
    }
    return schedule;
}

std::vector<FaultEvent>
FaultSchedule::materialize(const std::vector<int>& gpus_per_engine) const
{
    const int num_engines = static_cast<int>(gpus_per_engine.size());
    SP_ASSERT(num_engines > 0);
    int total_gpus = 0;
    for (const int g : gpus_per_engine) {
        SP_ASSERT(g > 0);
        total_gpus += g;
    }

    const auto engine_of_rank = [&](int rank) {
        int offset = 0;
        for (int e = 0; e < num_engines; ++e) {
            offset += gpus_per_engine[e];
            if (rank < offset)
                return e;
        }
        fatal("--faults: rank " + std::to_string(rank) +
              " is outside the deployment (" + std::to_string(total_gpus) +
              " GPUs)");
    };

    std::vector<FaultEvent> out;
    for (FaultEvent ev : events) {
        if (ev.rank >= 0)
            ev.engine = engine_of_rank(ev.rank);
        else if (ev.engine >= num_engines) {
            fatal("--faults: engine " + std::to_string(ev.engine) +
                  " is outside the deployment (" +
                  std::to_string(num_engines) + " engines)");
        }
        out.push_back(ev);
    }

    // Stochastic clauses: one decorrelated stream per (clause, engine),
    // derived from the clause seed alone — independent of thread count,
    // sweep order, or any other schedule content.
    for (const MtbfSpec& m : mtbf) {
        for (int e = 0; e < num_engines; ++e) {
            Rng rng(m.seed ^
                    (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(
                                                e + 1)));
            double t = rng.exponential(1.0 / m.mean);
            while (t < m.duration) {
                FaultEvent ev;
                ev.kind = FaultKind::kFail;
                ev.engine = e;
                ev.at = t;
                ev.recover_at = t + m.mttr;
                out.push_back(ev);
                t = ev.recover_at + rng.exponential(1.0 / m.mean);
            }
        }
    }

    std::stable_sort(out.begin(), out.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                         return a.at < b.at;
                     });
    return out;
}

} // namespace shiftpar::fault
