/**
 * @file
 * Fault-injection schedules for the discrete-event cluster core.
 *
 * A `FaultSchedule` is a declarative list of faults to inject into a
 * deployment replay: fail-stop replica failures (with optional recovery),
 * per-step straggler slowdowns, and interconnect degradation windows. It
 * is parsed from a `--faults` command-line spec (or built
 * programmatically) and *materialized* against a concrete deployment —
 * resolving rank addresses to engine indices and expanding stochastic
 * MTBF clauses into a seed-deterministic event list — so the same spec
 * plus seed always replays the same faults, byte for byte, regardless of
 * `--jobs` or host.
 *
 * Spec grammar (clauses separated by ';', keys by ','):
 *
 *   fail:engine=1,at=10[,recover=25]      fail-stop engine 1 at t=10s,
 *                                         rejoin (empty KV) at t=25s
 *   fail:rank=3,at=10                     address by GPU rank instead —
 *                                         the engine owning rank 3 dies,
 *                                         so one lost rank stalls a whole
 *                                         TP x SP group while flat DP
 *                                         loses a single replica
 *   straggle:engine=0,at=5,until=15,slow=2.5
 *                                         engine 0 runs every step 2.5x
 *                                         slower during [5,15)
 *   degrade:at=5,until=20,factor=4[,engine=i|rank=r]
 *                                         interconnect 4x slower (comm
 *                                         component of every step);
 *                                         applies to all engines unless
 *                                         addressed
 *   mtbf:mean=60,mttr=5,duration=300[,seed=1]
 *                                         stochastic fail/recover: each
 *                                         engine independently fails with
 *                                         exponential inter-failure times
 *                                         (mean 60s) and recovers 5s
 *                                         later, over [0,300)
 *   drain:engine=1,at=10[,resume=30]      gracefully drain engine 1 at
 *                                         t=10s: admission stops, queued
 *                                         requests are handed back to the
 *                                         router, running ones finish in
 *                                         place; admission resumes at
 *                                         t=30s (never, when omitted)
 *
 * Malformed specs `fatal()` naming the offending token and the failing
 * clause by 1-based index and text — a typo'd fault experiment must never
 * run silently as a healthy-cluster replay. Blank clauses (trailing or
 * doubled ';', stray whitespace) are tolerated and skipped.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace shiftpar::fault {

/** What kind of fault one schedule entry injects. */
enum class FaultKind
{
    kFail,      ///< fail-stop at `at`; optional recovery at `recover_at`
    kStraggle,  ///< per-step slowdown by `factor` during [at, recover_at)
    kDegrade,   ///< interconnect slowdown by `factor` during [at, recover_at)
    kDrain,     ///< graceful drain at `at`; admission resumes at `recover_at`
};

/** One scheduled fault against one engine (or all, for kDegrade). */
struct FaultEvent
{
    FaultKind kind = FaultKind::kFail;

    /**
     * Target engine index within the deployment; -1 when addressed by
     * `rank` (resolved at materialization) or, for kDegrade only, when
     * the fault applies to every engine.
     */
    int engine = -1;

    /** Target GPU rank (resolved to the owning engine); -1 when unset. */
    int rank = -1;

    /** Fault start time, seconds. */
    double at = 0.0;

    /**
     * Recovery/restore time, seconds; +inf for a permanent fail-stop.
     * Always finite for kStraggle/kDegrade.
     */
    double recover_at = 0.0;

    /** Slowdown factor (> 1) for kStraggle/kDegrade; unused for kFail. */
    double factor = 1.0;
};

/** Stochastic fail/recover process expanded at materialization. */
struct MtbfSpec
{
    double mean = 0.0;      ///< mean time between failures per engine, s
    double mttr = 0.0;      ///< time to recovery after each failure, s
    double duration = 0.0;  ///< failures generated over [0, duration)
    std::uint64_t seed = 1; ///< RNG seed (per-engine streams derived)
};

/** A full fault-injection plan (explicit events + stochastic clauses). */
struct FaultSchedule
{
    std::vector<FaultEvent> events;
    std::vector<MtbfSpec> mtbf;

    /** @return true when the schedule injects nothing. */
    bool empty() const { return events.empty() && mtbf.empty(); }

    /**
     * Resolve the schedule against a deployment: map `rank` addresses to
     * engine indices via `gpus_per_engine` (rank r belongs to the engine
     * whose cumulative GPU range contains it) and expand every MTBF
     * clause into explicit fail events with seed-deterministic times.
     * fatal() on an engine index or rank outside the deployment.
     *
     * @param gpus_per_engine GPU count of each engine, in replica order.
     * @return events sorted by (time, insertion order).
     */
    std::vector<FaultEvent> materialize(
        const std::vector<int>& gpus_per_engine) const;
};

/**
 * Parse a `--faults` spec (see file comment for the grammar). An empty
 * spec returns an empty schedule; anything malformed — unknown clause or
 * key, missing required key, unparsable or out-of-range value —
 * `fatal()`s naming the offending token.
 */
FaultSchedule parse_fault_spec(const std::string& spec);

/** Counters of one fault-injected replay (reported per run). */
struct FaultStats
{
    std::int64_t failures = 0;    ///< fail-stop transitions applied
    std::int64_t recoveries = 0;  ///< engines that rejoined
    std::int64_t straggles = 0;   ///< straggle windows applied
    std::int64_t degrades = 0;    ///< interconnect degradation windows
    std::int64_t dropped = 0;     ///< in-flight requests dropped by fails
    std::int64_t retries = 0;     ///< re-route attempts scheduled
    std::int64_t lost = 0;        ///< requests dropped permanently
    std::int64_t shed = 0;        ///< arrivals rejected while degraded

    /** @return true when any counter is non-zero. */
    bool any() const
    {
        return failures | recoveries | straggles | degrades | dropped |
               retries | lost | shed;
    }
};

} // namespace shiftpar::fault
