#include "sim/event_queue.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "util/logging.h"

namespace shiftpar::sim {

namespace {

// Chunk pulled from the top band when the bottom drains: an eighth of the
// backlog, floored so tiny queues pull everything at once and capped so a
// million-event backlog never sorts more than a cache-friendly slice.
constexpr std::size_t kMinChunk = 64;
constexpr std::size_t kMaxChunk = 4096;

} // namespace

EventQueue::EventQueue()
{
    // -inf threshold: until the first pull, every post lands in the top
    // band (no sorted inserts while a workload's arrivals stream in).
    threshold_ = {-std::numeric_limits<double>::infinity(), 0, 0};
}

std::uint32_t
EventQueue::alloc_node()
{
    if (free_head_ != kNil) {
        const std::uint32_t idx = free_head_;
        free_head_ = arena_[idx].next_free;
        return idx;
    }
    SP_ASSERT(arena_.size() < kNil);
    arena_.emplace_back();
    return static_cast<std::uint32_t>(arena_.size() - 1);
}

void
EventQueue::free_node(std::uint32_t idx) const
{
    Node& n = arena_[idx];
    n.fire = nullptr;
    n.state = NodeState::kFree;
    ++n.gen;  // stale any EventId still naming this slot
    n.next_free = free_head_;
    free_head_ = idx;
}

EventId
EventQueue::post(double t, std::function<void()> fire)
{
    SP_ASSERT(fire != nullptr);
    SP_DEBUG_ASSERT(std::isfinite(t) && t >= 0.0,
                    "event time must be finite and non-negative, got ", t);
    const std::uint32_t idx = alloc_node();
    Node& n = arena_[idx];
    SP_DEBUG_ASSERT(n.state == NodeState::kFree,
                    "allocated event node ", idx, " not free");
    n.fire = std::move(fire);
    n.state = NodeState::kPending;
    const Key key{t, next_seq_++, idx};
    if (key_less(key, threshold_)) {
        // Near future: sorted insert into the (small) bottom band. The
        // band is descending, so lower_bound with the reversed comparator
        // finds the slot that keeps the back the minimum.
        const auto pos = std::lower_bound(
            bottom_.begin(), bottom_.end(), key,
            [](const Key& a, const Key& b) { return key_less(b, a); });
        bottom_.insert(pos, key);
    } else {
        top_.push_back(key);
    }
    ++live_;
    ++stats_.pushes;
    const auto depth = static_cast<std::int64_t>(live_);
    if (depth > stats_.high_water)
        stats_.high_water = depth;
    return (static_cast<EventId>(n.gen) << 32) | idx;
}

bool
EventQueue::cancel(EventId id)
{
    // Only a still-pending, not-yet-cancelled event can die: a fired or
    // purged event's slot has a bumped generation (or was recycled into a
    // different id), and a second cancel finds the state already flipped.
    const auto idx = static_cast<std::uint32_t>(id & 0xffffffffu);
    const auto gen = static_cast<std::uint32_t>(id >> 32);
    if (idx >= arena_.size())
        return false;
    Node& n = arena_[idx];
    if (n.gen != gen || n.state != NodeState::kPending)
        return false;
    n.state = NodeState::kCancelled;
    n.fire = nullptr;  // release captures now, not at purge
    SP_ASSERT(live_ > 0);
    --live_;
    ++stats_.cancels;
    return true;
}

void
EventQueue::pull_chunk() const
{
    SP_ASSERT(bottom_.empty() && !top_.empty());
    const std::size_t chunk =
        std::clamp(top_.size() / 8, kMinChunk, kMaxChunk);
    const std::size_t k = std::min(top_.size(), chunk);
    if (k < top_.size()) {
        // Partition the k smallest keys to the front; the element at [k]
        // becomes the smallest key left behind, i.e. the new threshold.
        // Keys are unique, so the selected *set* (and therefore the fire
        // order) is deterministic even though nth_element's permutation
        // is not.
        std::nth_element(top_.begin(),
                         top_.begin() + static_cast<std::ptrdiff_t>(k),
                         top_.end(), key_less);
        threshold_ = top_[k];
    }
    std::sort(top_.begin(), top_.begin() + static_cast<std::ptrdiff_t>(k),
              [](const Key& a, const Key& b) { return key_less(b, a); });
    bottom_.assign(top_.begin(),
                   top_.begin() + static_cast<std::ptrdiff_t>(k));
    top_.erase(top_.begin(), top_.begin() + static_cast<std::ptrdiff_t>(k));
    if (top_.empty()) {
        // Top drained: split at the largest pulled key. Uniqueness makes
        // "key >= threshold goes top" strict in practice, so the bands
        // never interleave.
        threshold_ = bottom_.front();
    }
}

void
EventQueue::ensure_front() const
{
    for (;;) {
        if (bottom_.empty()) {
            if (top_.empty())
                return;
            pull_chunk();
        }
        const std::uint32_t idx = bottom_.back().node;
        const Node& n = arena_[idx];
        if (n.state == NodeState::kCancelled) {
            // Lazy purge on reaching the front, exactly like the old
            // heap-top purge: surviving events keep their original
            // (time, seq) order.
            free_node(idx);
            bottom_.pop_back();
            ++stats_.pops;
            continue;
        }
        SP_DEBUG_ASSERT(n.state == NodeState::kPending,
                        "freed event node ", idx, " still enqueued");
        return;
    }
}

double
EventQueue::next_time() const
{
    ensure_front();
    return bottom_.empty() ? std::numeric_limits<double>::infinity()
                           : bottom_.back().t;
}

void
EventQueue::fire_next()
{
    ensure_front();
    SP_ASSERT(!bottom_.empty());
    const Key key = bottom_.back();
#ifndef NDEBUG
    // Pops must never regress in (time, seq): FIFO tie-breaking at equal
    // times is what makes replays deterministic.
    SP_DEBUG_ASSERT(!fired_any_ || key.t > last_fired_t_ ||
                        (key.t == last_fired_t_ &&
                         key.seq > last_fired_seq_),
                    "event fire order regressed: (", key.t, ", ", key.seq,
                    ") after (", last_fired_t_, ", ", last_fired_seq_, ")");
    last_fired_t_ = key.t;
    last_fired_seq_ = key.seq;
    fired_any_ = true;
#endif
    // Detach the closure and retire the entry *before* firing: the
    // closure may post new events, growing the arena and bands under any
    // reference we could otherwise still hold.
    auto fire = std::move(arena_[key.node].fire);
    free_node(key.node);
    bottom_.pop_back();
    SP_ASSERT(live_ > 0);
    --live_;
    ++stats_.pops;
    fire();
}

} // namespace shiftpar::sim
