#include "sim/event_queue.h"

#include <limits>
#include <utility>

#include "util/logging.h"

namespace shiftpar::sim {

EventId
EventQueue::post(double t, std::function<void()> fire)
{
    SP_ASSERT(fire != nullptr);
    const EventId id = next_seq_++;
    heap_.push({t, id, std::move(fire)});
    pending_.insert(id);
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    // Only a still-pending, not-yet-cancelled event can die: ids that
    // already fired (or were never posted) are absent from pending_, and
    // a second cancel of the same id finds it gone too.
    return pending_.erase(id) > 0;
}

void
EventQueue::purge() const
{
    // Heap entries whose id left pending_ were cancelled; drop them so the
    // top is always a live event. Surviving events keep their original
    // (time, seq) order — cancellation never re-ranks them.
    while (!heap_.empty() && !pending_.count(heap_.top().seq))
        heap_.pop();
}

double
EventQueue::next_time() const
{
    purge();
    return heap_.empty() ? std::numeric_limits<double>::infinity()
                         : heap_.top().t;
}

void
EventQueue::fire_next()
{
    purge();
    SP_ASSERT(!heap_.empty());
    // Move the closure out before popping: firing may post new events,
    // which mutates the heap under us otherwise.
    auto fire = std::move(const_cast<Event&>(heap_.top()).fire);
    pending_.erase(heap_.top().seq);
    heap_.pop();
    fire();
}

} // namespace shiftpar::sim
