#include "sim/event_queue.h"

#include <cmath>
#include <limits>
#include <utility>

#include "util/logging.h"

namespace shiftpar::sim {

EventId
EventQueue::post(double t, std::function<void()> fire)
{
    SP_ASSERT(fire != nullptr);
    SP_DEBUG_ASSERT(std::isfinite(t) && t >= 0.0,
                    "event time must be finite and non-negative, got ", t);
    const EventId id = next_seq_++;
    heap_.push({t, id, std::move(fire)});
    const bool inserted = pending_.insert(id).second;
    (void)inserted;
    SP_DEBUG_ASSERT(inserted, "duplicate pending event id ", id);
    ++stats_.pushes;
    const auto depth = static_cast<std::int64_t>(pending_.size());
    if (depth > stats_.high_water)
        stats_.high_water = depth;
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    // Only a still-pending, not-yet-cancelled event can die: ids that
    // already fired (or were never posted) are absent from pending_, and
    // a second cancel of the same id finds it gone too.
    const bool cancelled = pending_.erase(id) > 0;
    if (cancelled)
        ++stats_.cancels;
    return cancelled;
}

void
EventQueue::purge() const
{
    // Heap entries whose id left pending_ were cancelled; drop them so the
    // top is always a live event. Surviving events keep their original
    // (time, seq) order — cancellation never re-ranks them.
    while (!heap_.empty() && !pending_.count(heap_.top().seq)) {
        heap_.pop();
        ++stats_.pops;
    }
}

double
EventQueue::next_time() const
{
    purge();
    return heap_.empty() ? std::numeric_limits<double>::infinity()
                         : heap_.top().t;
}

void
EventQueue::fire_next()
{
    purge();
    SP_ASSERT(!heap_.empty());
#ifndef NDEBUG
    // Pops must never regress in (time, seq): FIFO tie-breaking at equal
    // times is what makes replays deterministic.
    SP_DEBUG_ASSERT(!fired_any_ || heap_.top().t > last_fired_t_ ||
                        (heap_.top().t == last_fired_t_ &&
                         heap_.top().seq > last_fired_seq_),
                    "event fire order regressed: (", heap_.top().t, ", ",
                    heap_.top().seq, ") after (", last_fired_t_, ", ",
                    last_fired_seq_, ")");
    last_fired_t_ = heap_.top().t;
    last_fired_seq_ = heap_.top().seq;
    fired_any_ = true;
#endif
    // Move the closure out before popping: firing may post new events,
    // which mutates the heap under us otherwise.
    auto fire = std::move(const_cast<Event&>(heap_.top()).fire);
    pending_.erase(heap_.top().seq);
    heap_.pop();
    ++stats_.pops;
    fire();
}

} // namespace shiftpar::sim
