#include "sim/event_queue.h"

#include <limits>
#include <utility>

#include "util/logging.h"

namespace shiftpar::sim {

void
EventQueue::post(double t, std::function<void()> fire)
{
    SP_ASSERT(fire != nullptr);
    heap_.push({t, next_seq_++, std::move(fire)});
}

double
EventQueue::next_time() const
{
    return heap_.empty() ? std::numeric_limits<double>::infinity()
                         : heap_.top().t;
}

void
EventQueue::fire_next()
{
    SP_ASSERT(!heap_.empty());
    // Move the closure out before popping: firing may post new events,
    // which mutates the heap under us otherwise.
    auto fire = std::move(const_cast<Event&>(heap_.top()).fire);
    heap_.pop();
    fire();
}

} // namespace shiftpar::sim
