/**
 * @file
 * Self-profiling for the discrete-event cluster core.
 *
 * ROADMAP item 1 makes the core's events/sec the repo's speed limit; this
 * is the instrument that measures it. A `ClusterProfile` is a borrowed
 * accumulator a caller attaches to a `Cluster` before `run()`: the loop
 * then attributes host wall time to each component kind's `advance_to`,
 * counts fired events and event-callback time, and folds in the event
 * queue's heap-op counters and depth high-water at the end of the run.
 *
 * Profiling reads the wall clock but never writes simulation state, so a
 * profiled run is bit-identical to an unprofiled one (pinned by
 * tests/sim/test_profiler.cc). With no profile attached the loop pays one
 * null check per unit of progress.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace shiftpar::sim {

/** Host-time and event-count attribution for one `Cluster::run`. */
struct ClusterProfile
{
    /** Per-`Component::kind()` attribution. */
    struct KindStats
    {
        std::int64_t advances = 0;  ///< advance_to calls that progressed
        std::int64_t stalls = 0;    ///< advance_to calls that parked
        double wall_s = 0.0;        ///< host seconds inside advance_to
    };

    std::map<std::string, KindStats> components;

    std::int64_t events_fired = 0;  ///< queue events executed
    double event_wall_s = 0.0;      ///< host seconds inside event closures
    double run_wall_s = 0.0;        ///< host seconds inside Cluster::run

    std::int64_t queue_high_water = 0;  ///< max live pending events
    std::int64_t heap_pushes = 0;       ///< events posted
    std::int64_t heap_pops = 0;         ///< heap removals (incl. cancelled)
    std::int64_t heap_cancels = 0;      ///< lazy cancellations requested

    // Ready-heap traffic (the indexed structure picking the next actor).
    std::int64_t ready_pushes = 0;    ///< entries (re)published
    std::int64_t ready_pops = 0;      ///< live entries consumed
    std::int64_t ready_skips = 0;     ///< stale entries discarded lazily
    std::int64_t ready_rebuilds = 0;  ///< full rebuilds (run starts, compactions)

    /** Events per host second over the whole run (0 when unmeasurable). */
    double
    events_per_sec() const
    {
        return run_wall_s > 0.0
                   ? static_cast<double>(events_fired) / run_wall_s
                   : 0.0;
    }

    /** Total units of progress granted (advances + events). */
    std::int64_t
    units() const
    {
        std::int64_t n = events_fired;
        for (const auto& [kind, s] : components)
            n += s.advances;
        return n;
    }

    /** Fold another run's attribution into this one (sums; depth maxes). */
    void
    merge(const ClusterProfile& other)
    {
        for (const auto& [kind, s] : other.components) {
            KindStats& mine = components[kind];
            mine.advances += s.advances;
            mine.stalls += s.stalls;
            mine.wall_s += s.wall_s;
        }
        events_fired += other.events_fired;
        event_wall_s += other.event_wall_s;
        run_wall_s += other.run_wall_s;
        queue_high_water = queue_high_water > other.queue_high_water
                               ? queue_high_water
                               : other.queue_high_water;
        heap_pushes += other.heap_pushes;
        heap_pops += other.heap_pops;
        heap_cancels += other.heap_cancels;
        ready_pushes += other.ready_pushes;
        ready_pops += other.ready_pops;
        ready_skips += other.ready_skips;
        ready_rebuilds += other.ready_rebuilds;
    }
};

} // namespace shiftpar::sim
