/**
 * @file
 * Time-ordered event queue for the discrete-event cluster core.
 *
 * Events are (time, closure) pairs. Ties are FIFO: two events posted for
 * the same instant fire in posting order, which is what makes replays
 * deterministic — arrival events posted from a sorted workload fire in
 * workload order even when arrivals coincide.
 *
 * Events can be *cancelled* after posting (a failed component's pending
 * recovery or restore events must not fire on state that no longer
 * exists). Cancellation is lazy: the entry stays in the heap, marked dead,
 * and is purged when it reaches the top — so cancelling never perturbs the
 * heap order of surviving events, and FIFO tie-breaking among them is
 * exactly what it would have been had the cancelled event never existed.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace shiftpar::sim {

/** Handle identifying one posted event (unique per queue). */
using EventId = std::uint64_t;

/** A min-heap of timed closures with FIFO tie-breaking and cancellation. */
class EventQueue
{
  public:
    /**
     * Schedule `fire` at time `t` (seconds on the cluster clock).
     *
     * @return a handle usable with `cancel`.
     */
    EventId post(double t, std::function<void()> fire);

    /**
     * Invalidate a pending event: it will never fire. No-op when `id` has
     * already fired, was already cancelled, or was never posted.
     *
     * @return true when a pending event was actually cancelled.
     */
    bool cancel(EventId id);

    /** @return true when no live (non-cancelled) events are pending. */
    bool empty() const { return pending_.empty(); }

    /** @return number of live (non-cancelled) pending events. */
    std::size_t size() const { return pending_.size(); }

    /**
     * @return the earliest live pending event time; +inf when empty (so
     * callers can min() it against component ready times without a
     * branch).
     */
    double next_time() const;

    /**
     * Pop and run the earliest live pending event. The closure may post
     * further events (they land back in this queue). Must not be called
     * when `empty()`.
     */
    void fire_next();

    /**
     * Lifetime heap-op counters, kept unconditionally (integer increments
     * on paths that already touch the heap; unmeasurable next to the heap
     * ops themselves). The cluster profiler folds them into its report.
     */
    struct Stats
    {
        std::int64_t pushes = 0;      ///< events posted
        std::int64_t pops = 0;        ///< heap removals (incl. purged)
        std::int64_t cancels = 0;     ///< successful lazy cancellations
        std::int64_t high_water = 0;  ///< max live pending events
    };

    /** @return the lifetime heap-op counters. */
    const Stats& stats() const { return stats_; }

  private:
    struct Event
    {
        double t;
        EventId seq;  ///< posting order, breaks time ties FIFO
        std::function<void()> fire;
    };

    struct Later
    {
        bool operator()(const Event& a, const Event& b) const
        {
            if (a.t != b.t)
                return a.t > b.t;
            return a.seq > b.seq;
        }
    };

    /** Drop cancelled entries from the heap top. */
    void purge() const;

    mutable std::priority_queue<Event, std::vector<Event>, Later> heap_;
    std::unordered_set<EventId> pending_;  ///< posted, not fired/cancelled
    EventId next_seq_ = 0;
    mutable Stats stats_;  ///< mutable: purge() pops from const queries

#ifndef NDEBUG
    // Key of the last event fired, so debug builds can assert that pops
    // never regress in (time, seq) order — the property the determinism
    // guard ultimately rests on.
    double last_fired_t_ = 0.0;
    EventId last_fired_seq_ = 0;
    bool fired_any_ = false;
#endif
};

} // namespace shiftpar::sim
