/**
 * @file
 * Time-ordered event queue for the discrete-event cluster core.
 *
 * Events are (time, closure) pairs. Ties are FIFO: two events posted for
 * the same instant fire in posting order, which is what makes replays
 * deterministic — arrival events posted from a sorted workload fire in
 * workload order even when arrivals coincide.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace shiftpar::sim {

/** A min-heap of timed closures with FIFO tie-breaking. */
class EventQueue
{
  public:
    /** Schedule `fire` at time `t` (seconds on the cluster clock). */
    void post(double t, std::function<void()> fire);

    /** @return true when no events are pending. */
    bool empty() const { return heap_.empty(); }

    /** @return number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /**
     * @return the earliest pending event time; +inf when empty (so callers
     * can min() it against component ready times without a branch).
     */
    double next_time() const;

    /**
     * Pop and run the earliest pending event. The closure may post further
     * events (they land back in this queue). Must not be called when
     * `empty()`.
     */
    void fire_next();

  private:
    struct Event
    {
        double t;
        std::uint64_t seq;  ///< posting order, breaks time ties FIFO
        std::function<void()> fire;
    };

    struct Later
    {
        bool operator()(const Event& a, const Event& b) const
        {
            if (a.t != b.t)
                return a.t > b.t;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    std::uint64_t next_seq_ = 0;
};

} // namespace shiftpar::sim
