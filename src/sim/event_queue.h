/**
 * @file
 * Time-ordered event queue for the discrete-event cluster core.
 *
 * Events are (time, closure) pairs. Ties are FIFO: two events posted for
 * the same instant fire in posting order, which is what makes replays
 * deterministic — arrival events posted from a sorted workload fire in
 * workload order even when arrivals coincide.
 *
 * Events can be *cancelled* after posting (a failed component's pending
 * recovery or restore events must not fire on state that no longer
 * exists). Cancellation is lazy: the entry stays in its band, marked dead,
 * and is purged when it reaches the front — so cancelling never perturbs
 * the order of surviving events, and FIFO tie-breaking among them is
 * exactly what it would have been had the cancelled event never existed.
 *
 * Layout: a two-band calendar queue over an intrusive free-list arena.
 * Event nodes (closure + bookkeeping) live in a slab recycled through a
 * free list, so posting allocates nothing once the slab has grown and a
 * handle lookup is an index, not a hash probe. Keys `(time, seq)` are
 * split into a small *bottom* band kept sorted (the near future; the
 * minimum pops off its back) and an unsorted *top* band (everything
 * beyond `threshold_`); when the bottom drains, a chunk of the smallest
 * top keys is selected and sorted in. Keys are unique (seq is monotone),
 * so chunk selection is a deterministic set and the fire order is a pure
 * function of the post/cancel sequence — same guarantee the old binary
 * heap gave, without its per-post hash-set insert or the `std::function`
 * shuffling of every sift.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace shiftpar::sim {

/**
 * Handle identifying one posted event. Encodes an arena slot plus a
 * generation tag, so a handle kept across its event's firing (or
 * cancellation) is recognised as dead in O(1) — never confused with a
 * later event recycled into the same slot.
 */
using EventId = std::uint64_t;

/** A calendar queue of timed closures with FIFO tie-breaking and
 *  cancellation. */
class EventQueue
{
  public:
    EventQueue();

    /**
     * Schedule `fire` at time `t` (seconds on the cluster clock).
     *
     * @return a handle usable with `cancel`.
     */
    EventId post(double t, std::function<void()> fire);

    /**
     * Invalidate a pending event: it will never fire. No-op when `id` has
     * already fired, was already cancelled, or was never posted.
     *
     * @return true when a pending event was actually cancelled.
     */
    bool cancel(EventId id);

    /** @return true when no live (non-cancelled) events are pending. */
    bool empty() const { return live_ == 0; }

    /** @return number of live (non-cancelled) pending events. */
    std::size_t size() const { return live_; }

    /**
     * @return the earliest live pending event time; +inf when empty (so
     * callers can min() it against component ready times without a
     * branch).
     */
    double next_time() const;

    /**
     * Pop and run the earliest live pending event. The closure may post
     * further events (they land back in this queue). Must not be called
     * when `empty()`.
     */
    void fire_next();

    /**
     * Lifetime queue-op counters, kept unconditionally (integer
     * increments on paths that already touch the bands; unmeasurable next
     * to the band ops themselves). The cluster profiler folds them into
     * its report. `pops` counts front removals — fired events plus
     * cancelled entries purged on reaching the front — matching the old
     * binary-heap accounting exactly.
     */
    struct Stats
    {
        std::int64_t pushes = 0;      ///< events posted
        std::int64_t pops = 0;        ///< front removals (incl. purged)
        std::int64_t cancels = 0;     ///< successful lazy cancellations
        std::int64_t high_water = 0;  ///< max live pending events
    };

    /** @return the lifetime queue-op counters. */
    const Stats& stats() const { return stats_; }

  private:
    static constexpr std::uint32_t kNil = 0xffffffffu;

    enum class NodeState : std::uint8_t { kFree, kPending, kCancelled };

    /** Arena slot: closure + liveness for one posted event. */
    struct Node
    {
        std::function<void()> fire;
        std::uint32_t gen = 0;  ///< bumped on free; stales old EventIds
        NodeState state = NodeState::kFree;
        std::uint32_t next_free = kNil;
    };

    /** Ordering key: total order because `seq` is unique. */
    struct Key
    {
        double t;
        std::uint64_t seq;  ///< posting order, breaks time ties FIFO
        std::uint32_t node;
    };

    static bool key_less(const Key& a, const Key& b)
    {
        if (a.t != b.t)
            return a.t < b.t;
        return a.seq < b.seq;
    }

    std::uint32_t alloc_node();
    void free_node(std::uint32_t idx) const;

    /**
     * Establish "bottom back is the earliest live event": pull chunks
     * from the top band while the bottom is empty, purging cancelled
     * entries as they surface. Leaves both bands empty when nothing
     * (live or dead) remains.
     */
    void ensure_front() const;

    /** Move the smallest chunk of top keys into the (empty) bottom. */
    void pull_chunk() const;

    // next_time() stays const (callers min() it inside const queries) but
    // purges dead entries and rebalances bands, like the old heap's lazy
    // purge — hence the mutable internals.
    mutable std::vector<Node> arena_;
    mutable std::uint32_t free_head_ = kNil;
    mutable std::vector<Key> bottom_;  ///< sorted descending; min at back
    mutable std::vector<Key> top_;     ///< unsorted; all keys >= threshold_
    mutable Key threshold_;            ///< band split; see constructor
    std::uint64_t next_seq_ = 0;
    std::size_t live_ = 0;  ///< posted, not fired/cancelled
    mutable Stats stats_;

#ifndef NDEBUG
    // Key of the last event fired, so debug builds can assert that pops
    // never regress in (time, seq) order — the property the determinism
    // guard ultimately rests on.
    double last_fired_t_ = 0.0;
    std::uint64_t last_fired_seq_ = 0;
    bool fired_any_ = false;
#endif
};

} // namespace shiftpar::sim
