#include "sim/cluster.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace shiftpar::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

void
Component::notify_ready_changed()
{
    if (cluster_ != nullptr)
        cluster_->notify_ready(this);
}

Component::~Component()
{
    // Sever the link from this side: the owning cluster must never read
    // this component again (its registry entry goes null). Without this,
    // a cluster declared before its components would touch their dead
    // memory in its own destructor.
    if (cluster_ != nullptr)
        cluster_->detach(this);
}

Cluster::~Cluster()
{
    // Sever the link from this side: a later notify_ready_changed() from
    // a surviving component becomes a no-op instead of a write through a
    // dangling pointer. Every non-null entry still points here — add()
    // and ~Component() remove a component from its previous cluster, so
    // no stale registrations survive to be read after their death.
    for (Component* c : components_) {
        if (c != nullptr)
            c->cluster_ = nullptr;
    }
}

void
Cluster::add(Component* c)
{
    SP_ASSERT(c != nullptr);
    if (c->cluster_ != nullptr)
        c->cluster_->detach(c);  // keep the one-cluster invariant
    c->cluster_ = this;
    c->registration_index_ = components_.size();
    components_.push_back(c);
    slots_.emplace_back();
}

void
Cluster::detach(Component* c)
{
    const std::size_t idx = c->registration_index_;
    if (idx >= components_.size() || components_[idx] != c)
        return;  // an unregistered copy, or a slot since re-assigned
    components_[idx] = nullptr;
    Slot& s = slots_[idx];
    ++s.stamp;  // stales any heap entry; clean/compact drop it unread
    s.entry_live = false;
    if (s.stalled) {
        s.stalled = false;
        SP_ASSERT(stalled_count_ > 0);
        --stalled_count_;
    }
}

EventId
Cluster::post(double t, std::function<void()> fire)
{
    SP_DEBUG_ASSERT(t >= now_, "event posted into the past: t=", t,
                    " but cluster clock is ", now_);
    return queue_.post(t, std::move(fire));
}

bool
Cluster::cancel_event(EventId id)
{
    return queue_.cancel(id);
}

void
Cluster::set_progress_hook(std::function<void(double)> hook)
{
    hook_ = std::move(hook);
}

void
Cluster::push_ready(std::size_t idx, double t)
{
    Slot& s = slots_[idx];
    ++s.stamp;  // stales any entry this slot still has in the heap
    s.cached = t;
    s.entry_live = true;
    ready_.push_back({t, idx, s.stamp});
    std::push_heap(ready_.begin(), ready_.end(), ReadyLater{});
    ++ready_stats_.pushes;
}

void
Cluster::refresh_ready(std::size_t idx)
{
    const double t = components_[idx]->next_event_time();
    if (t < kInf) {
        push_ready(idx, t);
    } else {
        Slot& s = slots_[idx];
        ++s.stamp;
        s.entry_live = false;
    }
}

void
Cluster::notify_ready(Component* c)
{
    SP_ASSERT(c != nullptr && c->cluster_ == this);
    const std::size_t idx = c->registration_index_;
    Slot& s = slots_[idx];
    if (s.stalled) {
        // An external state change is the unblocking rule 4 waits for.
        s.stalled = false;
        SP_ASSERT(stalled_count_ > 0);
        --stalled_count_;
        // idx stays in stalled_list_; wake_stalled skips it by the flag.
    }
    const double t = c->next_event_time();
    if (s.entry_live) {
        if (t == s.cached)
            return;  // published time still right — the common case
        ++s.stamp;
        s.entry_live = false;
    } else if (t == kInf) {
        return;  // idle before, idle after
    }
    if (t < kInf)
        push_ready(idx, t);
}

void
Cluster::clean_ready_top()
{
    while (!ready_.empty()) {
        const ReadyEntry& e = ready_.front();
        const Slot& s = slots_[e.index];
        if (s.entry_live && s.stamp == e.stamp)
            return;
        std::pop_heap(ready_.begin(), ready_.end(), ReadyLater{});
        ready_.pop_back();
        ++ready_stats_.skips;
    }
}

void
Cluster::rebuild_ready()
{
    ready_.clear();
    for (std::size_t i = 0; i < components_.size(); ++i) {
        if (components_[i] == nullptr)
            continue;  // destroyed or re-registered elsewhere
        Slot& s = slots_[i];
        s.entry_live = false;
        if (s.stalled)
            continue;  // parked by a previous run(); stays parked (rule 4)
        const double t = components_[i]->next_event_time();
        ++s.stamp;
        if (t < kInf) {
            s.cached = t;
            s.entry_live = true;
            ready_.push_back({t, i, s.stamp});
            ++ready_stats_.pushes;
        }
    }
    std::make_heap(ready_.begin(), ready_.end(), ReadyLater{});
    ++ready_stats_.rebuilds;
}

void
Cluster::compact_ready()
{
    // Stale entries surface lazily, but a pathological notify pattern
    // could outrun the cleaning; cap the heap at O(components).
    ready_.erase(std::remove_if(ready_.begin(), ready_.end(),
                                [this](const ReadyEntry& e) {
                                    const Slot& s = slots_[e.index];
                                    return !s.entry_live ||
                                           s.stamp != e.stamp;
                                }),
                 ready_.end());
    std::make_heap(ready_.begin(), ready_.end(), ReadyLater{});
    ++ready_stats_.rebuilds;
}

void
Cluster::park(std::size_t idx)
{
    Slot& s = slots_[idx];
    SP_DEBUG_ASSERT(!s.stalled, "component ", idx, " parked twice");
    s.stalled = true;
    ++stalled_count_;
    stalled_list_.push_back(idx);
}

void
Cluster::wake_stalled()
{
    // Republish every parked component: anything that just happened may
    // have unblocked it (a routed arrival, a freed link, a migration).
    // Each wake re-reads one ready time — the targeted replacement for
    // the old blanket `std::fill` re-arm over the whole fleet.
    for (const std::size_t idx : stalled_list_) {
        Slot& s = slots_[idx];
        if (!s.stalled)
            continue;  // already unparked by a notify
        s.stalled = false;
        SP_ASSERT(stalled_count_ > 0);
        --stalled_count_;
        refresh_ready(idx);
    }
    stalled_list_.clear();
}

#ifndef NDEBUG
void
Cluster::verify_ready_cache() const
{
    // Debug builds keep the old O(n)-per-iteration fleet poll as an
    // oracle: a mutation that skipped notify_ready_changed() shows up
    // here instead of as a silently different replay.
    for (std::size_t i = 0; i < components_.size(); ++i) {
        if (components_[i] == nullptr)
            continue;
        const Slot& s = slots_[i];
        if (s.stalled)
            continue;
        const double t = components_[i]->next_event_time();
        if (s.entry_live) {
            SP_DEBUG_ASSERT(
                t == s.cached, "ready cache stale for component ", i,
                " (", components_[i]->kind(), "): cached ", s.cached,
                " but next_event_time() is ", t,
                " — a mutation skipped notify_ready_changed()");
        } else {
            SP_DEBUG_ASSERT(
                t == kInf, "ready cache stale for component ", i, " (",
                components_[i]->kind(),
                "): cached idle but next_event_time() is ", t,
                " — a mutation skipped notify_ready_changed()");
        }
    }
}
#endif

bool
Cluster::run()
{
    util::Stopwatch run_watch;
    rebuild_ready();

    for (;;) {
        clean_ready_top();
#ifndef NDEBUG
        verify_ready_cache();
#endif
        // Earliest ready component (stalled ones wait for an unblocking
        // event); registration order breaks ties inside the heap key.
        const double tc = ready_.empty() ? kInf : ready_.front().t;
        const double te = queue_.next_time();
        if (te == kInf && tc == kInf)
            break;  // quiescent (possibly with stalled components)

        if (te <= tc) {
            // Events win ties: an arrival at t precedes a step starting
            // at t, exactly as the lockstep replay submitted before
            // stepping (determinism rule 2).
            SP_DEBUG_ASSERT(te >= now_, "event time ", te,
                            " behind the cluster clock ", now_);
            now_ = std::max(now_, te);
            if (profile_) {
                util::Stopwatch watch;
                queue_.fire_next();
                profile_->event_wall_s += watch.elapsed_s();
                ++profile_->events_fired;
            } else {
                queue_.fire_next();
            }
        } else {
            const std::size_t idx = ready_.front().index;
            Component* comp = components_[idx];
            std::pop_heap(ready_.begin(), ready_.end(), ReadyLater{});
            ready_.pop_back();
            slots_[idx].entry_live = false;
            ++ready_stats_.pops;
            // tc may lag now_: a component woken after an event still
            // reports a ready time from before the clock moved. The max()
            // pins the clock; the progress hook never sees it move
            // backwards (asserted by
            // ClockIsMonotoneAcrossEventsAndComponents).
            now_ = std::max(now_, tc);
            bool progressed;
            if (profile_) {
                util::Stopwatch watch;
                progressed = comp->advance_to(tc);
                auto& stats = profile_->components[comp->kind()];
                stats.wall_s += watch.elapsed_s();
                if (progressed)
                    ++stats.advances;
                else
                    ++stats.stalls;
            } else {
                progressed = comp->advance_to(tc);
            }
            if (!progressed) {
                // Blocked (e.g. KV-full engine with nothing running):
                // park it until any event or foreign progress could have
                // changed its inputs.
                park(idx);
                continue;
            }
            refresh_ready(idx);
        }
        // Anything that just happened may unblock a parked component;
        // republish parked ready times (no-op when nothing is parked —
        // the old code refilled the whole stalled vector here).
        if (!stalled_list_.empty())
            wake_stalled();
        if (hook_)
            hook_(now_);
        if (ready_.size() > 2 * components_.size() + 64)
            compact_ready();
    }
    if (profile_) {
        profile_->run_wall_s += run_watch.elapsed_s();
        // Fold queue/ready-op deltas since the last fold, so posts made
        // before run() count toward this run but a second run() on the
        // same cluster never double-counts them.
        const EventQueue::Stats& heap = queue_.stats();
        profile_->heap_pushes += heap.pushes - heap_folded_.pushes;
        profile_->heap_pops += heap.pops - heap_folded_.pops;
        profile_->heap_cancels += heap.cancels - heap_folded_.cancels;
        profile_->queue_high_water =
            std::max(profile_->queue_high_water, heap.high_water);
        heap_folded_ = heap;
        profile_->ready_pushes +=
            ready_stats_.pushes - ready_folded_.pushes;
        profile_->ready_pops += ready_stats_.pops - ready_folded_.pops;
        profile_->ready_skips += ready_stats_.skips - ready_folded_.skips;
        profile_->ready_rebuilds +=
            ready_stats_.rebuilds - ready_folded_.rebuilds;
        ready_folded_ = ready_stats_;
    }
    return stalled_count_ == 0;
}

} // namespace shiftpar::sim
