#include "sim/cluster.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace shiftpar::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

void
Cluster::add(Component* c)
{
    SP_ASSERT(c != nullptr);
    components_.push_back(c);
    stalled_.push_back(false);
}

EventId
Cluster::post(double t, std::function<void()> fire)
{
    SP_DEBUG_ASSERT(t >= now_, "event posted into the past: t=", t,
                    " but cluster clock is ", now_);
    return queue_.post(t, std::move(fire));
}

bool
Cluster::cancel_event(EventId id)
{
    return queue_.cancel(id);
}

void
Cluster::set_progress_hook(std::function<void(double)> hook)
{
    hook_ = std::move(hook);
}

bool
Cluster::run()
{
    util::Stopwatch run_watch;

    for (;;) {
        // Earliest ready component (stalled ones wait for an unblocking
        // event); registration order breaks ties.
        Component* next_comp = nullptr;
        std::size_t next_idx = 0;
        double tc = kInf;
        for (std::size_t i = 0; i < components_.size(); ++i) {
            if (stalled_[i])
                continue;
            const double t = components_[i]->next_event_time();
            if (t < tc) {
                tc = t;
                next_comp = components_[i];
                next_idx = i;
            }
        }

        const double te = queue_.next_time();
        if (te == kInf && tc == kInf)
            break;  // quiescent (possibly with stalled components)

        if (te <= tc) {
            // Events win ties: an arrival at t precedes a step starting
            // at t, exactly as the lockstep replay submitted before
            // stepping (determinism rule 2).
            SP_DEBUG_ASSERT(te >= now_, "event time ", te,
                            " behind the cluster clock ", now_);
            now_ = std::max(now_, te);
            if (profile_) {
                util::Stopwatch watch;
                queue_.fire_next();
                profile_->event_wall_s += watch.elapsed_s();
                ++profile_->events_fired;
            } else {
                queue_.fire_next();
            }
        } else {
            // tc may lag now_: a component parked before an event fired
            // still reports its old ready time, meaning "ready now". The
            // max() pins the clock; the progress hook never sees it move
            // backwards (asserted by ClockIsMonotoneAcrossEventsAndComponents).
            now_ = std::max(now_, tc);
            bool progressed;
            if (profile_) {
                util::Stopwatch watch;
                progressed = next_comp->advance_to(tc);
                auto& stats = profile_->components[next_comp->kind()];
                stats.wall_s += watch.elapsed_s();
                if (progressed)
                    ++stats.advances;
                else
                    ++stats.stalls;
            } else {
                progressed = next_comp->advance_to(tc);
            }
            if (!progressed) {
                // Blocked (e.g. KV-full engine with nothing running):
                // park it until any event or foreign progress could have
                // changed its inputs.
                stalled_[next_idx] = true;
                continue;
            }
        }
        // Anything that just happened may unblock a parked component
        // (a routed arrival, a freed link, a migration); re-arm them all.
        std::fill(stalled_.begin(), stalled_.end(), false);
        if (hook_)
            hook_(now_);
    }
    if (profile_) {
        profile_->run_wall_s += run_watch.elapsed_s();
        // Fold heap-op deltas since the last fold, so posts made before
        // run() count toward this run but a second run() on the same
        // cluster never double-counts them.
        const EventQueue::Stats& heap = queue_.stats();
        profile_->heap_pushes += heap.pushes - heap_folded_.pushes;
        profile_->heap_pops += heap.pops - heap_folded_.pops;
        profile_->heap_cancels += heap.cancels - heap_folded_.cancels;
        profile_->queue_high_water =
            std::max(profile_->queue_high_water, heap.high_water);
        heap_folded_ = heap;
    }
    return std::none_of(stalled_.begin(), stalled_.end(),
                        [](bool s) { return s; });
}

} // namespace shiftpar::sim
