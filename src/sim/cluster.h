/**
 * @file
 * The discrete-event cluster loop: one clock for every engine, link, and
 * client event in a deployment.
 *
 * Replay used to be bespoke per driver — the router lockstep loop, the
 * two-phase disaggregated replay, hand-rolled bench drivers. `Cluster`
 * replaces them with one core: components (engines, links) report when
 * they can next act, clients post timed events (arrivals, KV handoffs,
 * cancels, migrations), and the loop interleaves both in global time
 * order. That shared timeline is what makes cross-engine interactions —
 * transfer contention, decode-pool backpressure, straggler migration —
 * expressible at all.
 *
 * Determinism rules (see DESIGN.md "sim core" and §10):
 *  1. Events at equal times fire in posting order (FIFO).
 *  2. An event at time t fires before any component unit *starting* at t
 *     (matches the lockstep replay, where `run_until(t)` only ran steps
 *     starting strictly before the arrival it preceded).
 *  3. Among components ready at the same instant, registration order wins.
 *  4. Stalled components (declared by `advance_to` returning false) are
 *     not re-polled until any event fires or any other component
 *     progresses — re-attempts are deterministic, never time-driven.
 *
 * The next actor is picked from an indexed *ready heap* instead of a
 * linear fleet scan: each component's `next_event_time` is cached in a
 * slot and published as a `(time, registration_index)` heap entry, so a
 * pick is O(log n) at any fleet size. Entries are invalidated by a
 * per-slot stamp and skipped lazily when they surface, which keeps
 * republication O(log n) too. The cache stays honest through the
 * notify-on-ready-change contract (`Component::notify_ready_changed`);
 * Debug builds re-poll the whole fleet every iteration and abort on a
 * stale cache, so the Release fast path can't silently diverge from the
 * old scan's semantics.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/component.h"
#include "sim/event_queue.h"
#include "sim/profiler.h"

namespace shiftpar::sim {

/** Owns the cluster clock; borrows components. */
class Cluster
{
  public:
    Cluster() = default;
    ~Cluster();

    // Components hold a back-pointer to their cluster; moving or copying
    // the cluster would silently orphan them.
    Cluster(const Cluster&) = delete;
    Cluster& operator=(const Cluster&) = delete;

    /**
     * Register a component (borrowed). The component's ready-change
     * notifications are routed here until it is registered with another
     * cluster, it is destroyed, or this cluster is destroyed — the
     * component/cluster link is severed from whichever side dies first,
     * so neither destruction order is ever a dangling access.
     */
    void add(Component* c);

    /**
     * Schedule a client event (arrival, handoff completion, cancel...).
     *
     * @return a handle usable with `cancel_event`.
     */
    EventId post(double t, std::function<void()> fire);

    /**
     * Invalidate a pending event (see `EventQueue::cancel`). Used when the
     * component an event targets has failed — e.g. a straggler-restore
     * event superseded by a fail-stop.
     *
     * @return true when a pending event was actually cancelled.
     */
    bool cancel_event(EventId id);

    /**
     * Publish that `c`'s `next_event_time` may have changed (the indexed
     * ready cache is refreshed from the new value). Components call this
     * through `notify_ready_changed()`; clients mutating a component
     * directly may call it too. Unparks a stalled component — an external
     * state change is exactly what rule 4 waits for. Cheap when nothing
     * changed; `c` must be registered with this cluster.
     */
    void notify_ready(Component* c);

    /**
     * Install a hook run after every fired event and every successful
     * component advance, at the current clock. Clients use it for
     * policies that watch the whole cluster (e.g. the router's
     * cross-replica migration). The hook may post events and mutate
     * component state; it must be deterministic.
     */
    void set_progress_hook(std::function<void(double)> hook);

    /**
     * Attach a self-profiling accumulator (borrowed; null detaches).
     * While attached, `run()` attributes host wall time per component
     * kind, counts fired events, and folds in the event queue's and
     * ready heap's op counters when it returns. Profiling never touches
     * simulation state: results are bit-identical with or without it.
     */
    void set_profile(ClusterProfile* profile) { profile_ = profile; }

    /**
     * Run until no events are pending and every component is idle or
     * stalled. Callers decide whether leftover stalled work is a deadlock
     * (an engine with unfinished requests) or benign.
     *
     * @return true when every component ended idle (next_event_time ==
     * +inf); false when at least one ended stalled.
     */
    bool run();

    /** @return the cluster clock (last event/progress time), seconds. */
    double now() const { return now_; }

  private:
    /** Cached ready state for one registered component. */
    struct Slot
    {
        double cached = 0.0;       ///< time in the live heap entry
        std::uint64_t stamp = 0;   ///< bumped per publish; stales old entries
        bool entry_live = false;   ///< a current-stamp heap entry exists
        bool stalled = false;      ///< parked by advance_to() == false
    };

    /** One published ready time; valid iff its slot's stamp still matches. */
    struct ReadyEntry
    {
        double t;
        std::size_t index;  ///< registration order, breaks time ties
        std::uint64_t stamp;
    };

    struct ReadyLater
    {
        bool operator()(const ReadyEntry& a, const ReadyEntry& b) const
        {
            if (a.t != b.t)
                return a.t > b.t;
            return a.index > b.index;
        }
    };

    /** Ready-heap traffic counters (profiler fodder; always cheap). */
    struct ReadyStats
    {
        std::int64_t pushes = 0;
        std::int64_t pops = 0;
        std::int64_t skips = 0;
        std::int64_t rebuilds = 0;
    };

    friend class Component;  // ~Component() unregisters via detach()

    /** Forget `c` (destroyed or re-registered elsewhere); safe no-op
     * when `c` is not this cluster's current occupant of its slot. */
    void detach(Component* c);

    /** Publish a (bumped-stamp) entry for component `idx` at time `t`. */
    void push_ready(std::size_t idx, double t);

    /** Re-read `idx`'s time and republish (or go idle). */
    void refresh_ready(std::size_t idx);

    /** Drop stale entries until the heap top is live (or heap empty). */
    void clean_ready_top();

    /** Rebuild slots + heap from scratch (run start). */
    void rebuild_ready();

    /** Drop all stale entries and re-heapify (bounds heap growth). */
    void compact_ready();

    /** Park `idx` until an event or foreign progress (rule 4). */
    void park(std::size_t idx);

    /** Republish every parked component's ready time. */
    void wake_stalled();

#ifndef NDEBUG
    /** Full-fleet re-poll asserting the cache matches live state. */
    void verify_ready_cache() const;
#endif

    EventQueue queue_;
    std::vector<Component*> components_;
    std::vector<Slot> slots_;
    std::vector<ReadyEntry> ready_;        ///< min-heap via ReadyLater
    std::vector<std::size_t> stalled_list_;  ///< parked indices (may hold
                                             ///< unparked leftovers; the
                                             ///< slot flag is the truth)
    std::size_t stalled_count_ = 0;
    std::function<void(double)> hook_;
    ClusterProfile* profile_ = nullptr;  ///< borrowed; null = off
    EventQueue::Stats heap_folded_;      ///< heap stats already attributed
    ReadyStats ready_stats_;
    ReadyStats ready_folded_;  ///< ready stats already attributed
    double now_ = 0.0;
};

} // namespace shiftpar::sim
