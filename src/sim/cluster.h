/**
 * @file
 * The discrete-event cluster loop: one clock for every engine, link, and
 * client event in a deployment.
 *
 * Replay used to be bespoke per driver — the router lockstep loop, the
 * two-phase disaggregated replay, hand-rolled bench drivers. `Cluster`
 * replaces them with one core: components (engines, links) report when
 * they can next act, clients post timed events (arrivals, KV handoffs,
 * cancels, migrations), and the loop interleaves both in global time
 * order. That shared timeline is what makes cross-engine interactions —
 * transfer contention, decode-pool backpressure, straggler migration —
 * expressible at all.
 *
 * Determinism rules (see DESIGN.md "sim core"):
 *  1. Events at equal times fire in posting order (FIFO).
 *  2. An event at time t fires before any component unit *starting* at t
 *     (matches the lockstep replay, where `run_until(t)` only ran steps
 *     starting strictly before the arrival it preceded).
 *  3. Among components ready at the same instant, registration order wins.
 *  4. Stalled components (declared by `advance_to` returning false) are
 *     not re-polled until any event fires or any other component
 *     progresses — re-attempts are deterministic, never time-driven.
 */

#pragma once

#include <functional>
#include <vector>

#include "sim/component.h"
#include "sim/event_queue.h"
#include "sim/profiler.h"

namespace shiftpar::sim {

/** Owns the cluster clock; borrows components. */
class Cluster
{
  public:
    /** Register a component (borrowed; must outlive the cluster). */
    void add(Component* c);

    /**
     * Schedule a client event (arrival, handoff completion, cancel...).
     *
     * @return a handle usable with `cancel_event`.
     */
    EventId post(double t, std::function<void()> fire);

    /**
     * Invalidate a pending event (see `EventQueue::cancel`). Used when the
     * component an event targets has failed — e.g. a straggler-restore
     * event superseded by a fail-stop.
     *
     * @return true when a pending event was actually cancelled.
     */
    bool cancel_event(EventId id);

    /**
     * Install a hook run after every fired event and every successful
     * component advance, at the current clock. Clients use it for
     * policies that watch the whole cluster (e.g. the router's
     * cross-replica migration). The hook may post events and mutate
     * component state; it must be deterministic.
     */
    void set_progress_hook(std::function<void(double)> hook);

    /**
     * Attach a self-profiling accumulator (borrowed; null detaches).
     * While attached, `run()` attributes host wall time per component
     * kind, counts fired events, and folds in the event queue's heap-op
     * stats when it returns. Profiling never touches simulation state:
     * results are bit-identical with or without it.
     */
    void set_profile(ClusterProfile* profile) { profile_ = profile; }

    /**
     * Run until no events are pending and every component is idle or
     * stalled. Callers decide whether leftover stalled work is a deadlock
     * (an engine with unfinished requests) or benign.
     *
     * @return true when every component ended idle (next_event_time ==
     * +inf); false when at least one ended stalled.
     */
    bool run();

    /** @return the cluster clock (last event/progress time), seconds. */
    double now() const { return now_; }

  private:
    EventQueue queue_;
    std::vector<Component*> components_;
    std::vector<bool> stalled_;
    std::function<void(double)> hook_;
    ClusterProfile* profile_ = nullptr;  ///< borrowed; null = off
    EventQueue::Stats heap_folded_;      ///< heap stats already attributed
    double now_ = 0.0;
};

} // namespace shiftpar::sim
