/**
 * @file
 * The `Component` contract of the discrete-event cluster core.
 *
 * A component is anything that owns its own simulated clock and does work
 * in atomic units — an inference engine stepping its scheduler, a fabric
 * link draining transfers. The cluster loop repeatedly asks every
 * component when it could next act (`next_event_time`) and grants the
 * earliest one a single unit of progress (`advance_to`), interleaving
 * component work with queued events (arrivals, KV handoffs, cancels) in
 * global time order.
 */

#pragma once

namespace shiftpar::sim {

/** One actor on the cluster timeline. */
class Component
{
  public:
    virtual ~Component() = default;

    /**
     * @return a static string naming this component's kind ("engine",
     * "link", ...), the key the cluster self-profiler attributes wall
     * time under. Purely descriptive — never consulted by the loop's
     * scheduling decisions.
     */
    virtual const char* kind() const { return "component"; }

    /**
     * @return the earliest time this component could make progress:
     *  - its current clock, when work is executable now;
     *  - a future instant, when it is idle until a known event (e.g. the
     *    earliest waiting arrival);
     *  - +inf when it has nothing to do.
     *
     * Must be monotone between `advance_to` calls: the cluster trusts it
     * to pick the next actor and to detect quiescence.
     */
    virtual double next_event_time() const = 0;

    /**
     * Perform at most ONE unit of progress, with clearance up to time `t`
     * (`t >= next_event_time()`); the unit may overshoot `t` — units are
     * atomic, exactly like an engine step that straddles an arrival.
     *
     * @return true when progress was made (a step executed, idle time
     * skipped). Returning false declares the component *stalled*: it has
     * work but cannot proceed until some other event changes its state
     * (the cluster will not re-poll it until one fires). A component that
     * returns true must have advanced its own clock or changed state —
     * otherwise the cluster loop cannot terminate.
     */
    virtual bool advance_to(double t) = 0;
};

} // namespace shiftpar::sim
