/**
 * @file
 * The `Component` contract of the discrete-event cluster core.
 *
 * A component is anything that owns its own simulated clock and does work
 * in atomic units — an inference engine stepping its scheduler, a fabric
 * link draining transfers. The cluster loop repeatedly asks every
 * component when it could next act (`next_event_time`) and grants the
 * earliest one a single unit of progress (`advance_to`), interleaving
 * component work with queued events (arrivals, KV handoffs, cancels) in
 * global time order.
 *
 * Ready-change contract: the cluster does not re-poll every component per
 * unit of progress — it caches each component's ready time in an indexed
 * heap (see `Cluster::notify_ready`). The cluster itself refreshes the
 * cache around the `advance_to` calls it makes and whenever it wakes a
 * stalled component, so a component whose ready time only changes when it
 * advances needs nothing. Any *other* mutation that can change
 * `next_event_time` — work submitted from an event closure, a fail-stop,
 * a stolen request, an external clock sync — must call
 * `notify_ready_changed()` (or `Cluster::notify_ready`) before the
 * mutating call returns. Debug builds re-poll every component each
 * iteration and abort on a stale cache, so a missed notification cannot
 * silently change replay results.
 */

#pragma once

#include <cstddef>

namespace shiftpar::sim {

class Cluster;

/** One actor on the cluster timeline. */
class Component
{
  public:
    Component() = default;

    /**
     * Registration is identity-bound, not value-bound: a copy starts
     * unregistered, and assignment leaves the target's registration
     * alone. (Copying a registered component into a cluster-owned role
     * requires a fresh `Cluster::add`.)
     */
    Component(const Component&) {}
    Component& operator=(const Component&) { return *this; }

    /** Unregisters from the owning cluster, if any (see cluster.cc). */
    virtual ~Component();

    /**
     * @return a static string naming this component's kind ("engine",
     * "link", ...), the key the cluster self-profiler attributes wall
     * time under. Purely descriptive — never consulted by the loop's
     * scheduling decisions.
     */
    virtual const char* kind() const { return "component"; }

    /**
     * @return the earliest time this component could make progress:
     *  - its current clock, when work is executable now;
     *  - a future instant, when it is idle until a known event (e.g. the
     *    earliest waiting arrival);
     *  - +inf when it has nothing to do.
     *
     * Must be a pure function of component state (identical consecutive
     * calls return identical values): the cluster caches it to pick the
     * next actor and to detect quiescence.
     */
    virtual double next_event_time() const = 0;

    /**
     * Perform at most ONE unit of progress, with clearance up to time `t`
     * (`t >= next_event_time()`); the unit may overshoot `t` — units are
     * atomic, exactly like an engine step that straddles an arrival.
     *
     * @return true when progress was made (a step executed, idle time
     * skipped). Returning false declares the component *stalled*: it has
     * work but cannot proceed until some other event changes its state
     * (the cluster will not re-poll it until one fires). A component that
     * returns true must have advanced its own clock or changed state —
     * otherwise the cluster loop cannot terminate.
     */
    virtual bool advance_to(double t) = 0;

  protected:
    /**
     * Publish that this component's `next_event_time` may have changed
     * (see the ready-change contract above). No-op when the component is
     * not registered with a cluster, so components that also run
     * standalone (an engine under `run_until`/`drain`) call it
     * unconditionally. Must not be called from inside this component's
     * own `advance_to` — the cluster refreshes the advanced component
     * itself (enforced by shiftlint's sim-contract check).
     */
    void notify_ready_changed();

  private:
    friend class Cluster;
    Cluster* cluster_ = nullptr;        ///< owner (null when unregistered)
    std::size_t registration_index_ = 0;
};

} // namespace shiftpar::sim
