
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/agentic.cc" "src/workload/CMakeFiles/shiftpar_workload.dir/agentic.cc.o" "gcc" "src/workload/CMakeFiles/shiftpar_workload.dir/agentic.cc.o.d"
  "/root/repo/src/workload/arrival.cc" "src/workload/CMakeFiles/shiftpar_workload.dir/arrival.cc.o" "gcc" "src/workload/CMakeFiles/shiftpar_workload.dir/arrival.cc.o.d"
  "/root/repo/src/workload/azure_trace.cc" "src/workload/CMakeFiles/shiftpar_workload.dir/azure_trace.cc.o" "gcc" "src/workload/CMakeFiles/shiftpar_workload.dir/azure_trace.cc.o.d"
  "/root/repo/src/workload/bursty.cc" "src/workload/CMakeFiles/shiftpar_workload.dir/bursty.cc.o" "gcc" "src/workload/CMakeFiles/shiftpar_workload.dir/bursty.cc.o.d"
  "/root/repo/src/workload/characterize.cc" "src/workload/CMakeFiles/shiftpar_workload.dir/characterize.cc.o" "gcc" "src/workload/CMakeFiles/shiftpar_workload.dir/characterize.cc.o.d"
  "/root/repo/src/workload/mix.cc" "src/workload/CMakeFiles/shiftpar_workload.dir/mix.cc.o" "gcc" "src/workload/CMakeFiles/shiftpar_workload.dir/mix.cc.o.d"
  "/root/repo/src/workload/mooncake_trace.cc" "src/workload/CMakeFiles/shiftpar_workload.dir/mooncake_trace.cc.o" "gcc" "src/workload/CMakeFiles/shiftpar_workload.dir/mooncake_trace.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/workload/CMakeFiles/shiftpar_workload.dir/synthetic.cc.o" "gcc" "src/workload/CMakeFiles/shiftpar_workload.dir/synthetic.cc.o.d"
  "/root/repo/src/workload/trace_io.cc" "src/workload/CMakeFiles/shiftpar_workload.dir/trace_io.cc.o" "gcc" "src/workload/CMakeFiles/shiftpar_workload.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/shiftpar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/shiftpar_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/kvcache/CMakeFiles/shiftpar_kvcache.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/shiftpar_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/shiftpar_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/shiftpar_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
