# Empty compiler generated dependencies file for shiftpar_workload.
# This may be replaced when dependencies are built.
