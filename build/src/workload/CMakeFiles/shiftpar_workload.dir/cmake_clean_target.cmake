file(REMOVE_RECURSE
  "libshiftpar_workload.a"
)
