file(REMOVE_RECURSE
  "CMakeFiles/shiftpar_workload.dir/agentic.cc.o"
  "CMakeFiles/shiftpar_workload.dir/agentic.cc.o.d"
  "CMakeFiles/shiftpar_workload.dir/arrival.cc.o"
  "CMakeFiles/shiftpar_workload.dir/arrival.cc.o.d"
  "CMakeFiles/shiftpar_workload.dir/azure_trace.cc.o"
  "CMakeFiles/shiftpar_workload.dir/azure_trace.cc.o.d"
  "CMakeFiles/shiftpar_workload.dir/bursty.cc.o"
  "CMakeFiles/shiftpar_workload.dir/bursty.cc.o.d"
  "CMakeFiles/shiftpar_workload.dir/characterize.cc.o"
  "CMakeFiles/shiftpar_workload.dir/characterize.cc.o.d"
  "CMakeFiles/shiftpar_workload.dir/mix.cc.o"
  "CMakeFiles/shiftpar_workload.dir/mix.cc.o.d"
  "CMakeFiles/shiftpar_workload.dir/mooncake_trace.cc.o"
  "CMakeFiles/shiftpar_workload.dir/mooncake_trace.cc.o.d"
  "CMakeFiles/shiftpar_workload.dir/synthetic.cc.o"
  "CMakeFiles/shiftpar_workload.dir/synthetic.cc.o.d"
  "CMakeFiles/shiftpar_workload.dir/trace_io.cc.o"
  "CMakeFiles/shiftpar_workload.dir/trace_io.cc.o.d"
  "libshiftpar_workload.a"
  "libshiftpar_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shiftpar_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
