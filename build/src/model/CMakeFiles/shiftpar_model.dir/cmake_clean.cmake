file(REMOVE_RECURSE
  "CMakeFiles/shiftpar_model.dir/flops.cc.o"
  "CMakeFiles/shiftpar_model.dir/flops.cc.o.d"
  "CMakeFiles/shiftpar_model.dir/model_config.cc.o"
  "CMakeFiles/shiftpar_model.dir/model_config.cc.o.d"
  "CMakeFiles/shiftpar_model.dir/presets.cc.o"
  "CMakeFiles/shiftpar_model.dir/presets.cc.o.d"
  "libshiftpar_model.a"
  "libshiftpar_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shiftpar_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
