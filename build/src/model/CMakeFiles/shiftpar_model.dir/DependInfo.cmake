
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/flops.cc" "src/model/CMakeFiles/shiftpar_model.dir/flops.cc.o" "gcc" "src/model/CMakeFiles/shiftpar_model.dir/flops.cc.o.d"
  "/root/repo/src/model/model_config.cc" "src/model/CMakeFiles/shiftpar_model.dir/model_config.cc.o" "gcc" "src/model/CMakeFiles/shiftpar_model.dir/model_config.cc.o.d"
  "/root/repo/src/model/presets.cc" "src/model/CMakeFiles/shiftpar_model.dir/presets.cc.o" "gcc" "src/model/CMakeFiles/shiftpar_model.dir/presets.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/shiftpar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
