# Empty compiler generated dependencies file for shiftpar_model.
# This may be replaced when dependencies are built.
