file(REMOVE_RECURSE
  "libshiftpar_model.a"
)
