
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/autotuner.cc" "src/core/CMakeFiles/shiftpar_core.dir/autotuner.cc.o" "gcc" "src/core/CMakeFiles/shiftpar_core.dir/autotuner.cc.o.d"
  "/root/repo/src/core/deployment.cc" "src/core/CMakeFiles/shiftpar_core.dir/deployment.cc.o" "gcc" "src/core/CMakeFiles/shiftpar_core.dir/deployment.cc.o.d"
  "/root/repo/src/core/disaggregated.cc" "src/core/CMakeFiles/shiftpar_core.dir/disaggregated.cc.o" "gcc" "src/core/CMakeFiles/shiftpar_core.dir/disaggregated.cc.o.d"
  "/root/repo/src/core/framework.cc" "src/core/CMakeFiles/shiftpar_core.dir/framework.cc.o" "gcc" "src/core/CMakeFiles/shiftpar_core.dir/framework.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/shiftpar_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/shiftpar_core.dir/report.cc.o.d"
  "/root/repo/src/core/shift_controller.cc" "src/core/CMakeFiles/shiftpar_core.dir/shift_controller.cc.o" "gcc" "src/core/CMakeFiles/shiftpar_core.dir/shift_controller.cc.o.d"
  "/root/repo/src/core/spec_decode.cc" "src/core/CMakeFiles/shiftpar_core.dir/spec_decode.cc.o" "gcc" "src/core/CMakeFiles/shiftpar_core.dir/spec_decode.cc.o.d"
  "/root/repo/src/core/swiftkv.cc" "src/core/CMakeFiles/shiftpar_core.dir/swiftkv.cc.o" "gcc" "src/core/CMakeFiles/shiftpar_core.dir/swiftkv.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/shiftpar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/shiftpar_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/shiftpar_model.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/shiftpar_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/kvcache/CMakeFiles/shiftpar_kvcache.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/shiftpar_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/shiftpar_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
