file(REMOVE_RECURSE
  "CMakeFiles/shiftpar_core.dir/autotuner.cc.o"
  "CMakeFiles/shiftpar_core.dir/autotuner.cc.o.d"
  "CMakeFiles/shiftpar_core.dir/deployment.cc.o"
  "CMakeFiles/shiftpar_core.dir/deployment.cc.o.d"
  "CMakeFiles/shiftpar_core.dir/disaggregated.cc.o"
  "CMakeFiles/shiftpar_core.dir/disaggregated.cc.o.d"
  "CMakeFiles/shiftpar_core.dir/framework.cc.o"
  "CMakeFiles/shiftpar_core.dir/framework.cc.o.d"
  "CMakeFiles/shiftpar_core.dir/report.cc.o"
  "CMakeFiles/shiftpar_core.dir/report.cc.o.d"
  "CMakeFiles/shiftpar_core.dir/shift_controller.cc.o"
  "CMakeFiles/shiftpar_core.dir/shift_controller.cc.o.d"
  "CMakeFiles/shiftpar_core.dir/spec_decode.cc.o"
  "CMakeFiles/shiftpar_core.dir/spec_decode.cc.o.d"
  "CMakeFiles/shiftpar_core.dir/swiftkv.cc.o"
  "CMakeFiles/shiftpar_core.dir/swiftkv.cc.o.d"
  "libshiftpar_core.a"
  "libshiftpar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shiftpar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
