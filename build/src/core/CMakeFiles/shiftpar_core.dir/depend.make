# Empty dependencies file for shiftpar_core.
# This may be replaced when dependencies are built.
