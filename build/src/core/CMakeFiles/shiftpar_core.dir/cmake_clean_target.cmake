file(REMOVE_RECURSE
  "libshiftpar_core.a"
)
