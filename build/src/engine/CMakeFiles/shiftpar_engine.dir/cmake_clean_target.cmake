file(REMOVE_RECURSE
  "libshiftpar_engine.a"
)
