file(REMOVE_RECURSE
  "CMakeFiles/shiftpar_engine.dir/engine.cc.o"
  "CMakeFiles/shiftpar_engine.dir/engine.cc.o.d"
  "CMakeFiles/shiftpar_engine.dir/metrics.cc.o"
  "CMakeFiles/shiftpar_engine.dir/metrics.cc.o.d"
  "CMakeFiles/shiftpar_engine.dir/request.cc.o"
  "CMakeFiles/shiftpar_engine.dir/request.cc.o.d"
  "CMakeFiles/shiftpar_engine.dir/router.cc.o"
  "CMakeFiles/shiftpar_engine.dir/router.cc.o.d"
  "CMakeFiles/shiftpar_engine.dir/scheduler.cc.o"
  "CMakeFiles/shiftpar_engine.dir/scheduler.cc.o.d"
  "libshiftpar_engine.a"
  "libshiftpar_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shiftpar_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
