# Empty compiler generated dependencies file for shiftpar_engine.
# This may be replaced when dependencies are built.
