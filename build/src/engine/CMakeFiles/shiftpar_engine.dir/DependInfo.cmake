
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/engine.cc" "src/engine/CMakeFiles/shiftpar_engine.dir/engine.cc.o" "gcc" "src/engine/CMakeFiles/shiftpar_engine.dir/engine.cc.o.d"
  "/root/repo/src/engine/metrics.cc" "src/engine/CMakeFiles/shiftpar_engine.dir/metrics.cc.o" "gcc" "src/engine/CMakeFiles/shiftpar_engine.dir/metrics.cc.o.d"
  "/root/repo/src/engine/request.cc" "src/engine/CMakeFiles/shiftpar_engine.dir/request.cc.o" "gcc" "src/engine/CMakeFiles/shiftpar_engine.dir/request.cc.o.d"
  "/root/repo/src/engine/router.cc" "src/engine/CMakeFiles/shiftpar_engine.dir/router.cc.o" "gcc" "src/engine/CMakeFiles/shiftpar_engine.dir/router.cc.o.d"
  "/root/repo/src/engine/scheduler.cc" "src/engine/CMakeFiles/shiftpar_engine.dir/scheduler.cc.o" "gcc" "src/engine/CMakeFiles/shiftpar_engine.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/shiftpar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/shiftpar_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/shiftpar_model.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/shiftpar_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/kvcache/CMakeFiles/shiftpar_kvcache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
