# Empty dependencies file for shiftpar_util.
# This may be replaced when dependencies are built.
