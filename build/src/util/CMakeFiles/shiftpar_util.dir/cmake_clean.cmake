file(REMOVE_RECURSE
  "CMakeFiles/shiftpar_util.dir/argparse.cc.o"
  "CMakeFiles/shiftpar_util.dir/argparse.cc.o.d"
  "CMakeFiles/shiftpar_util.dir/ascii_plot.cc.o"
  "CMakeFiles/shiftpar_util.dir/ascii_plot.cc.o.d"
  "CMakeFiles/shiftpar_util.dir/csv.cc.o"
  "CMakeFiles/shiftpar_util.dir/csv.cc.o.d"
  "CMakeFiles/shiftpar_util.dir/logging.cc.o"
  "CMakeFiles/shiftpar_util.dir/logging.cc.o.d"
  "CMakeFiles/shiftpar_util.dir/rng.cc.o"
  "CMakeFiles/shiftpar_util.dir/rng.cc.o.d"
  "CMakeFiles/shiftpar_util.dir/stats.cc.o"
  "CMakeFiles/shiftpar_util.dir/stats.cc.o.d"
  "CMakeFiles/shiftpar_util.dir/table.cc.o"
  "CMakeFiles/shiftpar_util.dir/table.cc.o.d"
  "libshiftpar_util.a"
  "libshiftpar_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shiftpar_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
