file(REMOVE_RECURSE
  "libshiftpar_util.a"
)
