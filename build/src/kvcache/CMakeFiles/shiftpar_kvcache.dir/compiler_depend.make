# Empty compiler generated dependencies file for shiftpar_kvcache.
# This may be replaced when dependencies are built.
