file(REMOVE_RECURSE
  "CMakeFiles/shiftpar_kvcache.dir/block_allocator.cc.o"
  "CMakeFiles/shiftpar_kvcache.dir/block_allocator.cc.o.d"
  "CMakeFiles/shiftpar_kvcache.dir/block_table.cc.o"
  "CMakeFiles/shiftpar_kvcache.dir/block_table.cc.o.d"
  "CMakeFiles/shiftpar_kvcache.dir/cache_manager.cc.o"
  "CMakeFiles/shiftpar_kvcache.dir/cache_manager.cc.o.d"
  "CMakeFiles/shiftpar_kvcache.dir/layout.cc.o"
  "CMakeFiles/shiftpar_kvcache.dir/layout.cc.o.d"
  "libshiftpar_kvcache.a"
  "libshiftpar_kvcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shiftpar_kvcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
