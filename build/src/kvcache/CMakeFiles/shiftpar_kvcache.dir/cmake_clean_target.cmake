file(REMOVE_RECURSE
  "libshiftpar_kvcache.a"
)
