
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kvcache/block_allocator.cc" "src/kvcache/CMakeFiles/shiftpar_kvcache.dir/block_allocator.cc.o" "gcc" "src/kvcache/CMakeFiles/shiftpar_kvcache.dir/block_allocator.cc.o.d"
  "/root/repo/src/kvcache/block_table.cc" "src/kvcache/CMakeFiles/shiftpar_kvcache.dir/block_table.cc.o" "gcc" "src/kvcache/CMakeFiles/shiftpar_kvcache.dir/block_table.cc.o.d"
  "/root/repo/src/kvcache/cache_manager.cc" "src/kvcache/CMakeFiles/shiftpar_kvcache.dir/cache_manager.cc.o" "gcc" "src/kvcache/CMakeFiles/shiftpar_kvcache.dir/cache_manager.cc.o.d"
  "/root/repo/src/kvcache/layout.cc" "src/kvcache/CMakeFiles/shiftpar_kvcache.dir/layout.cc.o" "gcc" "src/kvcache/CMakeFiles/shiftpar_kvcache.dir/layout.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/shiftpar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/shiftpar_model.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/shiftpar_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/shiftpar_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
