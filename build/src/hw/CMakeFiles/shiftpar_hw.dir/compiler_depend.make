# Empty compiler generated dependencies file for shiftpar_hw.
# This may be replaced when dependencies are built.
