file(REMOVE_RECURSE
  "CMakeFiles/shiftpar_hw.dir/gpu.cc.o"
  "CMakeFiles/shiftpar_hw.dir/gpu.cc.o.d"
  "CMakeFiles/shiftpar_hw.dir/interconnect.cc.o"
  "CMakeFiles/shiftpar_hw.dir/interconnect.cc.o.d"
  "CMakeFiles/shiftpar_hw.dir/presets.cc.o"
  "CMakeFiles/shiftpar_hw.dir/presets.cc.o.d"
  "CMakeFiles/shiftpar_hw.dir/topology.cc.o"
  "CMakeFiles/shiftpar_hw.dir/topology.cc.o.d"
  "libshiftpar_hw.a"
  "libshiftpar_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shiftpar_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
