file(REMOVE_RECURSE
  "libshiftpar_hw.a"
)
