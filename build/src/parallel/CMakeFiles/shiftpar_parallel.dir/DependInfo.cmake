
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/config.cc" "src/parallel/CMakeFiles/shiftpar_parallel.dir/config.cc.o" "gcc" "src/parallel/CMakeFiles/shiftpar_parallel.dir/config.cc.o.d"
  "/root/repo/src/parallel/layout.cc" "src/parallel/CMakeFiles/shiftpar_parallel.dir/layout.cc.o" "gcc" "src/parallel/CMakeFiles/shiftpar_parallel.dir/layout.cc.o.d"
  "/root/repo/src/parallel/memory.cc" "src/parallel/CMakeFiles/shiftpar_parallel.dir/memory.cc.o" "gcc" "src/parallel/CMakeFiles/shiftpar_parallel.dir/memory.cc.o.d"
  "/root/repo/src/parallel/perf_model.cc" "src/parallel/CMakeFiles/shiftpar_parallel.dir/perf_model.cc.o" "gcc" "src/parallel/CMakeFiles/shiftpar_parallel.dir/perf_model.cc.o.d"
  "/root/repo/src/parallel/strategy.cc" "src/parallel/CMakeFiles/shiftpar_parallel.dir/strategy.cc.o" "gcc" "src/parallel/CMakeFiles/shiftpar_parallel.dir/strategy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/shiftpar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/shiftpar_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/shiftpar_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
