file(REMOVE_RECURSE
  "CMakeFiles/shiftpar_parallel.dir/config.cc.o"
  "CMakeFiles/shiftpar_parallel.dir/config.cc.o.d"
  "CMakeFiles/shiftpar_parallel.dir/layout.cc.o"
  "CMakeFiles/shiftpar_parallel.dir/layout.cc.o.d"
  "CMakeFiles/shiftpar_parallel.dir/memory.cc.o"
  "CMakeFiles/shiftpar_parallel.dir/memory.cc.o.d"
  "CMakeFiles/shiftpar_parallel.dir/perf_model.cc.o"
  "CMakeFiles/shiftpar_parallel.dir/perf_model.cc.o.d"
  "CMakeFiles/shiftpar_parallel.dir/strategy.cc.o"
  "CMakeFiles/shiftpar_parallel.dir/strategy.cc.o.d"
  "libshiftpar_parallel.a"
  "libshiftpar_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shiftpar_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
