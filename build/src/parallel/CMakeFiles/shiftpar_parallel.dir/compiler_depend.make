# Empty compiler generated dependencies file for shiftpar_parallel.
# This may be replaced when dependencies are built.
