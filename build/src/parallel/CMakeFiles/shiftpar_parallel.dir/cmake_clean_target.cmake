file(REMOVE_RECURSE
  "libshiftpar_parallel.a"
)
