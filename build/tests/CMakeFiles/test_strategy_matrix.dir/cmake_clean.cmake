file(REMOVE_RECURSE
  "CMakeFiles/test_strategy_matrix.dir/integration/test_strategy_matrix.cc.o"
  "CMakeFiles/test_strategy_matrix.dir/integration/test_strategy_matrix.cc.o.d"
  "test_strategy_matrix"
  "test_strategy_matrix.pdb"
  "test_strategy_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strategy_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
