# Empty dependencies file for test_strategy_matrix.
# This may be replaced when dependencies are built.
