file(REMOVE_RECURSE
  "CMakeFiles/test_disaggregated.dir/core/test_disaggregated.cc.o"
  "CMakeFiles/test_disaggregated.dir/core/test_disaggregated.cc.o.d"
  "test_disaggregated"
  "test_disaggregated.pdb"
  "test_disaggregated[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disaggregated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
