# Empty dependencies file for test_disaggregated.
# This may be replaced when dependencies are built.
