
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload/test_workload.cc" "tests/CMakeFiles/test_workload.dir/workload/test_workload.cc.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/shiftpar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/shiftpar_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/shiftpar_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/kvcache/CMakeFiles/shiftpar_kvcache.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/shiftpar_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/shiftpar_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/shiftpar_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/shiftpar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
