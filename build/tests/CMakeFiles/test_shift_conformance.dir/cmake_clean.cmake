file(REMOVE_RECURSE
  "CMakeFiles/test_shift_conformance.dir/integration/test_shift_conformance.cc.o"
  "CMakeFiles/test_shift_conformance.dir/integration/test_shift_conformance.cc.o.d"
  "test_shift_conformance"
  "test_shift_conformance.pdb"
  "test_shift_conformance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shift_conformance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
