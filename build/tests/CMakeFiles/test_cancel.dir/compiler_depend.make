# Empty compiler generated dependencies file for test_cancel.
# This may be replaced when dependencies are built.
