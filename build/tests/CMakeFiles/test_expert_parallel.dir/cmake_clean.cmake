file(REMOVE_RECURSE
  "CMakeFiles/test_expert_parallel.dir/parallel/test_expert_parallel.cc.o"
  "CMakeFiles/test_expert_parallel.dir/parallel/test_expert_parallel.cc.o.d"
  "test_expert_parallel"
  "test_expert_parallel.pdb"
  "test_expert_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_expert_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
