# Empty compiler generated dependencies file for test_expert_parallel.
# This may be replaced when dependencies are built.
