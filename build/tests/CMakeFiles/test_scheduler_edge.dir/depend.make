# Empty dependencies file for test_scheduler_edge.
# This may be replaced when dependencies are built.
