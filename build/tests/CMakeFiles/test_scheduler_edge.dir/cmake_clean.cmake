file(REMOVE_RECURSE
  "CMakeFiles/test_scheduler_edge.dir/engine/test_scheduler_edge.cc.o"
  "CMakeFiles/test_scheduler_edge.dir/engine/test_scheduler_edge.cc.o.d"
  "test_scheduler_edge"
  "test_scheduler_edge.pdb"
  "test_scheduler_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scheduler_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
