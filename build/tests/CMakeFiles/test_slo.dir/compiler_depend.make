# Empty compiler generated dependencies file for test_slo.
# This may be replaced when dependencies are built.
