file(REMOVE_RECURSE
  "CMakeFiles/test_config_memory.dir/parallel/test_config_memory.cc.o"
  "CMakeFiles/test_config_memory.dir/parallel/test_config_memory.cc.o.d"
  "test_config_memory"
  "test_config_memory.pdb"
  "test_config_memory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
