# Empty dependencies file for test_config_memory.
# This may be replaced when dependencies are built.
