# Empty dependencies file for test_perf_golden.
# This may be replaced when dependencies are built.
