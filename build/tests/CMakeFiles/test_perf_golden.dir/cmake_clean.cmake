file(REMOVE_RECURSE
  "CMakeFiles/test_perf_golden.dir/parallel/test_perf_golden.cc.o"
  "CMakeFiles/test_perf_golden.dir/parallel/test_perf_golden.cc.o.d"
  "test_perf_golden"
  "test_perf_golden.pdb"
  "test_perf_golden[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
