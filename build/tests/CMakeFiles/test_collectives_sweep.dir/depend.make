# Empty dependencies file for test_collectives_sweep.
# This may be replaced when dependencies are built.
