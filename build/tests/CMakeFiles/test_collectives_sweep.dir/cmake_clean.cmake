file(REMOVE_RECURSE
  "CMakeFiles/test_collectives_sweep.dir/hw/test_collectives_sweep.cc.o"
  "CMakeFiles/test_collectives_sweep.dir/hw/test_collectives_sweep.cc.o.d"
  "test_collectives_sweep"
  "test_collectives_sweep.pdb"
  "test_collectives_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collectives_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
