# Empty dependencies file for bench_ext_expert_parallel.
# This may be replaced when dependencies are built.
