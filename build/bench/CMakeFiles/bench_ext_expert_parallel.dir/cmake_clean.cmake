file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_expert_parallel.dir/bench_ext_expert_parallel.cc.o"
  "CMakeFiles/bench_ext_expert_parallel.dir/bench_ext_expert_parallel.cc.o.d"
  "bench_ext_expert_parallel"
  "bench_ext_expert_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_expert_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
