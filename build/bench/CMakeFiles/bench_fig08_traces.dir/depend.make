# Empty dependencies file for bench_fig08_traces.
# This may be replaced when dependencies are built.
