# Empty dependencies file for bench_fig09_azure.
# This may be replaced when dependencies are built.
