file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_azure.dir/bench_fig09_azure.cc.o"
  "CMakeFiles/bench_fig09_azure.dir/bench_fig09_azure.cc.o.d"
  "bench_fig09_azure"
  "bench_fig09_azure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_azure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
