file(REMOVE_RECURSE
  "CMakeFiles/bench_sensitivity_hw.dir/bench_sensitivity_hw.cc.o"
  "CMakeFiles/bench_sensitivity_hw.dir/bench_sensitivity_hw.cc.o.d"
  "bench_sensitivity_hw"
  "bench_sensitivity_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sensitivity_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
