# Empty compiler generated dependencies file for bench_sensitivity_hw.
# This may be replaced when dependencies are built.
