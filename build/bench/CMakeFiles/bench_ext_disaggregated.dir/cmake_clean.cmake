file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_disaggregated.dir/bench_ext_disaggregated.cc.o"
  "CMakeFiles/bench_ext_disaggregated.dir/bench_ext_disaggregated.cc.o.d"
  "bench_ext_disaggregated"
  "bench_ext_disaggregated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_disaggregated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
