# Empty dependencies file for bench_ext_disaggregated.
# This may be replaced when dependencies are built.
