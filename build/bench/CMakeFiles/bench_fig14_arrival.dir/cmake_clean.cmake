file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_arrival.dir/bench_fig14_arrival.cc.o"
  "CMakeFiles/bench_fig14_arrival.dir/bench_fig14_arrival.cc.o.d"
  "bench_fig14_arrival"
  "bench_fig14_arrival.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_arrival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
