# Empty dependencies file for bench_fig14_arrival.
# This may be replaced when dependencies are built.
