file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_headline.dir/bench_fig01_headline.cc.o"
  "CMakeFiles/bench_fig01_headline.dir/bench_fig01_headline.cc.o.d"
  "bench_fig01_headline"
  "bench_fig01_headline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_headline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
