file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_mooncake.dir/bench_fig10_mooncake.cc.o"
  "CMakeFiles/bench_fig10_mooncake.dir/bench_fig10_mooncake.cc.o.d"
  "bench_fig10_mooncake"
  "bench_fig10_mooncake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_mooncake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
