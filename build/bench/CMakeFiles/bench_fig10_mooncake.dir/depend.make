# Empty dependencies file for bench_fig10_mooncake.
# This may be replaced when dependencies are built.
