# Empty dependencies file for bench_table3_optimal.
# This may be replaced when dependencies are built.
