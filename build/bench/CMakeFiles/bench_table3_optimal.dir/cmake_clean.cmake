file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_optimal.dir/bench_table3_optimal.cc.o"
  "CMakeFiles/bench_table3_optimal.dir/bench_table3_optimal.cc.o.d"
  "bench_table3_optimal"
  "bench_table3_optimal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_optimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
