file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_context.dir/bench_fig13_context.cc.o"
  "CMakeFiles/bench_fig13_context.dir/bench_fig13_context.cc.o.d"
  "bench_fig13_context"
  "bench_fig13_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
