# Empty compiler generated dependencies file for bench_fig13_context.
# This may be replaced when dependencies are built.
