file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sp.dir/bench_ablation_sp.cc.o"
  "CMakeFiles/bench_ablation_sp.dir/bench_ablation_sp.cc.o.d"
  "bench_ablation_sp"
  "bench_ablation_sp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
