# Empty dependencies file for bench_ablation_sp.
# This may be replaced when dependencies are built.
