# Empty dependencies file for bench_fig17_models.
# This may be replaced when dependencies are built.
