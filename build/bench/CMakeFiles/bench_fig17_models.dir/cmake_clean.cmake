file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_models.dir/bench_fig17_models.cc.o"
  "CMakeFiles/bench_fig17_models.dir/bench_fig17_models.cc.o.d"
  "bench_fig17_models"
  "bench_fig17_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
