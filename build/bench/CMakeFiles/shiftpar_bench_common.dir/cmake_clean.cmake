file(REMOVE_RECURSE
  "CMakeFiles/shiftpar_bench_common.dir/common/bench_common.cc.o"
  "CMakeFiles/shiftpar_bench_common.dir/common/bench_common.cc.o.d"
  "libshiftpar_bench_common.a"
  "libshiftpar_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shiftpar_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
