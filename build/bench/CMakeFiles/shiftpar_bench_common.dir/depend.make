# Empty dependencies file for shiftpar_bench_common.
# This may be replaced when dependencies are built.
