file(REMOVE_RECURSE
  "libshiftpar_bench_common.a"
)
