# Empty compiler generated dependencies file for bench_ext_slo.
# This may be replaced when dependencies are built.
