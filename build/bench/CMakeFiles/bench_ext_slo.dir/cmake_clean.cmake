file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_slo.dir/bench_ext_slo.cc.o"
  "CMakeFiles/bench_ext_slo.dir/bench_ext_slo.cc.o.d"
  "bench_ext_slo"
  "bench_ext_slo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_slo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
