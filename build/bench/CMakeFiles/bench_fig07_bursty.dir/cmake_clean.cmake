file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_bursty.dir/bench_fig07_bursty.cc.o"
  "CMakeFiles/bench_fig07_bursty.dir/bench_fig07_bursty.cc.o.d"
  "bench_fig07_bursty"
  "bench_fig07_bursty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_bursty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
