file(REMOVE_RECURSE
  "CMakeFiles/moe_serving.dir/moe_serving.cpp.o"
  "CMakeFiles/moe_serving.dir/moe_serving.cpp.o.d"
  "moe_serving"
  "moe_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moe_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
