file(REMOVE_RECURSE
  "CMakeFiles/interactive_agent.dir/interactive_agent.cpp.o"
  "CMakeFiles/interactive_agent.dir/interactive_agent.cpp.o.d"
  "interactive_agent"
  "interactive_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
