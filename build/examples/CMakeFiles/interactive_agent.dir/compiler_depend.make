# Empty compiler generated dependencies file for interactive_agent.
# This may be replaced when dependencies are built.
