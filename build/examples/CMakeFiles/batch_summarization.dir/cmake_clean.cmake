file(REMOVE_RECURSE
  "CMakeFiles/batch_summarization.dir/batch_summarization.cpp.o"
  "CMakeFiles/batch_summarization.dir/batch_summarization.cpp.o.d"
  "batch_summarization"
  "batch_summarization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_summarization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
