# Empty compiler generated dependencies file for batch_summarization.
# This may be replaced when dependencies are built.
